"""``serve`` / ``storm`` subcommands for ``python -m repro``.

``serve agent|coordinator`` run one protocol process over asyncio TCP;
``serve cluster`` launches and supervises 1 coordinator + N agents;
``storm`` drives the live cluster with the debit-credit workload (and
optionally a SIGKILL at an exact protocol point) and verifies the
invariant battery afterwards. See docs/DEPLOY.md.
"""

from __future__ import annotations

import argparse

from repro.rt.tuning import BankConfig

_DEFAULT_BANK = BankConfig()


def _add_common_node_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="host:port to bind (port 0 = ephemeral, default)",
    )
    parser.add_argument(
        "--data-root",
        default="rt-data",
        help="directory for WAL segments + history journals",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the readiness status as one JSON line on stdout",
    )
    parser.add_argument(
        "--tuning-json",
        default=None,
        help="RtTuning overrides as a JSON object (cluster launcher use)",
    )


def _add_bank_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bank-sites",
        default=",".join(_DEFAULT_BANK.sites),
        help="comma-separated branch sites (all processes must agree)",
    )
    parser.add_argument(
        "--accounts", type=int, default=_DEFAULT_BANK.accounts_per_branch
    )
    parser.add_argument(
        "--tellers", type=int, default=_DEFAULT_BANK.tellers_per_branch
    )
    parser.add_argument(
        "--balance", type=int, default=_DEFAULT_BANK.initial_account_balance
    )


def add_rt_parsers(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="run protocol processes over real TCP (agent/coordinator/cluster)",
    )
    roles = serve.add_subparsers(dest="role", required=True)

    agent = roles.add_parser("agent", help="serve one 2PC Agent site")
    agent.add_argument("--site", required=True, help="branch site name")
    _add_common_node_args(agent)
    _add_bank_args(agent)
    agent.set_defaults(run=_run_agent)

    coordinator = roles.add_parser(
        "coordinator", help="serve one Coordinating Site"
    )
    coordinator.add_argument("--name", default="c1")
    coordinator.add_argument(
        "--federation-json",
        default=None,
        help="federation config as JSON (n_shards, lease_span, "
        "drain_timeout, coordinators); cluster launcher use",
    )
    _add_common_node_args(coordinator)
    coordinator.set_defaults(run=_run_coordinator)

    allocator = roles.add_parser(
        "allocator", help="serve the federation's SN-lease allocator"
    )
    allocator.add_argument("--name", default="alloc")
    allocator.add_argument(
        "--lease-span",
        type=int,
        default=64,
        help="default SN values per lease grant",
    )
    _add_common_node_args(allocator)
    allocator.set_defaults(run=_run_allocator)

    cluster = roles.add_parser(
        "cluster", help="launch + supervise coordinators + N agents"
    )
    cluster.add_argument("--name", default="c1", help="coordinator name")
    cluster.add_argument(
        "--coordinators",
        type=int,
        default=0,
        metavar="M",
        help="federated mode: spawn M coordinators (c1..cM) + one "
        "SN-lease allocator and shard the keyspace across them "
        "(0 = classic single-coordinator layout)",
    )
    cluster.add_argument(
        "--n-shards", type=int, default=8, help="hash buckets (federated)"
    )
    cluster.add_argument(
        "--lease-span", type=int, default=64, help="SNs per lease grant"
    )
    cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="handoff: max seconds to drain a shard before forcing",
    )
    cluster.add_argument(
        "--nemesis",
        action="store_true",
        help="route all peer links through a fault-injection proxy "
        "(control socket advertised in cluster.json)",
    )
    cluster.add_argument(
        "--max-restarts",
        type=int,
        default=10,
        help="crash-loop guard: give up on a child after this many respawns",
    )
    _add_common_node_args(cluster)
    _add_bank_args(cluster)
    cluster.set_defaults(run=_run_cluster)

    storm = subparsers.add_parser(
        "storm", help="drive a live cluster: debit-credit + kill/recover"
    )
    storm.add_argument(
        "--data-root",
        default="rt-data",
        help="cluster data root (holds cluster.json, WALs, journals)",
    )
    storm.add_argument(
        "--launch",
        action="store_true",
        help="launch the cluster as a subprocess for the run",
    )
    storm.add_argument("--txns", type=int, default=40)
    storm.add_argument("--seed", type=int, default=0)
    storm.add_argument("--remote-fraction", type=float, default=0.3)
    storm.add_argument(
        "--inflight", type=int, default=8, help="submission window size"
    )
    storm.add_argument(
        "--kill-agent",
        type=int,
        default=0,
        metavar="N",
        help="SIGKILL the N-th agent (1-based) mid-run",
    )
    storm.add_argument(
        "--kill-coordinator",
        action="store_true",
        help="SIGKILL the coordinator mid-run (--at sn_drawn, "
        "decision_logged, or mid_broadcast)",
    )
    storm.add_argument(
        "--at",
        default="prepared",
        help="protocol point for the kill (agents: prepared, ready, "
        "committed, or any CRASH_POINT; coordinator: sn_drawn, "
        "decision_logged, mid_broadcast)",
    )
    storm.add_argument(
        "--kill-after",
        type=int,
        default=2,
        help="kill on the k-th hit of the crash point",
    )
    storm.add_argument("--txn-timeout", type=float, default=30.0)
    storm.add_argument(
        "--timeout", type=float, default=120.0, help="overall run deadline"
    )
    storm.add_argument(
        "--settle",
        type=float,
        default=2.0,
        help="post-run drain before verification (seconds)",
    )
    storm.add_argument(
        "--label", default=None, help="BENCH_rt.json run label override"
    )
    storm.add_argument("--bench-out", default="BENCH_rt.json")
    storm.add_argument(
        "--json-report",
        action="store_true",
        help="print the full report as JSON instead of prose",
    )
    storm.add_argument(
        "--quit-cluster",
        action="store_true",
        help="send quit to all processes after the run (attached mode)",
    )
    storm.add_argument(
        "--federated",
        action="store_true",
        help="with --launch: start a sharded multi-coordinator cluster "
        "(see --coordinators) and route submissions by shard",
    )
    storm.add_argument(
        "--coordinators",
        type=int,
        default=3,
        metavar="M",
        help="coordinator count for --federated --launch (default 3)",
    )
    storm.add_argument(
        "--n-shards", type=int, default=8, help="hash buckets (federated)"
    )
    storm.add_argument(
        "--lease-span", type=int, default=64, help="SNs per lease grant"
    )
    storm.add_argument(
        "--handoff",
        action="store_true",
        help="federated: migrate one shard between two live "
        "coordinators mid-run (drain -> epoch bump -> adopt)",
    )
    storm.add_argument(
        "--kill-during-handoff",
        choices=("none", "source", "target"),
        default="none",
        help="SIGKILL the handoff's source or target coordinator "
        "mid-migration (implies --handoff)",
    )
    storm.set_defaults(run=_run_storm)

    chaos = subparsers.add_parser(
        "chaos-rt",
        help="composed drill: storm traffic x nemesis faults x process "
        "kills x disk faults -> heal -> invariant battery",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="drives the fault plan, the workload, AND the kill mode "
        "(seed %% 4: coord@sn_drawn, coord@decision_logged, "
        "coord@mid_broadcast, agent@prepared)",
    )
    chaos.add_argument("--txns", type=int, default=60)
    chaos.add_argument("--data-root", default="chaos-rt-data")
    chaos.add_argument("--remote-fraction", type=float, default=0.4)
    chaos.add_argument("--inflight", type=int, default=8)
    chaos.add_argument(
        "--plan-duration",
        type=float,
        default=10.0,
        help="nemesis plan horizon (every fault starts inside it)",
    )
    chaos.add_argument("--txn-timeout", type=float, default=20.0)
    chaos.add_argument(
        "--timeout", type=float, default=150.0, help="overall run deadline"
    )
    chaos.add_argument(
        "--settle",
        type=float,
        default=8.0,
        help="post-heal drain before verification (covers lock-timeout "
        "aborts of orphaned subtransactions)",
    )
    chaos.add_argument("--bench-out", default="BENCH_rt.json")
    chaos.add_argument("--json-report", action="store_true")
    chaos.set_defaults(run=_run_chaos)


def _run_agent(args) -> int:
    from repro.rt.node import run_serve_agent

    return run_serve_agent(args)


def _run_coordinator(args) -> int:
    from repro.rt.node import run_serve_coordinator

    return run_serve_coordinator(args)


def _run_allocator(args) -> int:
    from repro.rt.node import run_serve_allocator

    return run_serve_allocator(args)


def _run_cluster(args) -> int:
    from repro.rt.cluster import run_serve_cluster

    return run_serve_cluster(args)


def _run_storm(args) -> int:
    from repro.rt.storm import run_storm

    return run_storm(args)


def _run_chaos(args) -> int:
    from repro.rt.chaos import run_chaos

    return run_chaos(args)
