"""``TcpTransport``: the ``Network`` surface over real asyncio sockets.

The protocol objects and the session layer see the same duck type the
simulated :class:`repro.net.network.Network` offers — ``register`` /
``unregister`` / ``note_endpoint_down`` / ``note_endpoint_up`` /
``send`` — but ``send`` routes by address: locally-registered handlers
get a loopback delivery through the kernel, everything else is framed
by :mod:`repro.rt.codec` and pushed onto a per-peer outbound queue
drained by a writer task with reconnect + exponential backoff.

Connections are directional: each process dials its peers and keeps
its own outbound connection; replies travel back on the *replier's*
outbound connection, not this one. Both sides of every connection open
with a ``FRAME_HELLO`` carrying the sender's name and boot id, which
is how a peer learns that its counterpart restarted (the boot id
changes) and resets the session-layer channel state exactly once.

Protocol handler exceptions are contained per message: they are
counted, logged to stderr, and never tear down the reader loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import traceback
import uuid
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.common.errors import ConfigError, SimulationError
from repro.net.messages import Message
from repro.rt.codec import (
    FRAME_CONTROL,
    FRAME_HELLO,
    FRAME_MESSAGE,
    FrameDecoder,
    WireError,
    encode_frame,
    encode_message,
    message_from_body,
)

#: Reconnect backoff bounds (seconds).
RECONNECT_MIN = 0.05
RECONNECT_MAX = 1.0
#: Default per-peer outbound queue bound; the oldest frame is dropped
#: beyond it (the session layer retransmits anything that mattered).
#: A long partition otherwise grows a disconnected peer's reconnect
#: queue without limit.
OUTBOX_LIMIT = 4096
_READ_CHUNK = 65536

Route = Tuple[str, int]


class _Peer:
    """One dialled neighbour: its queue, connection, and writer task."""

    __slots__ = ("route", "queue", "wake", "writer", "task", "closed", "dropped")

    def __init__(self, route: Route) -> None:
        self.route = route
        self.queue: Deque[bytes] = deque()
        self.wake = asyncio.Event()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None
        self.closed = False
        self.dropped = 0


class TcpTransport:
    """A ``Network``-compatible transport over asyncio TCP."""

    def __init__(
        self,
        name: str,
        kernel,
        *,
        boot_id: Optional[str] = None,
        outbox_limit: int = OUTBOX_LIMIT,
    ) -> None:
        self.name = name
        self.kernel = kernel
        #: Per-peer outbound queue bound (drop-oldest beyond it).
        self.outbox_limit = max(1, int(outbox_limit))
        #: Changes on every process start; rides on HELLO frames so
        #: peers can detect restarts.
        self.boot_id = boot_id if boot_id is not None else uuid.uuid4().hex
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        self._control_handlers: Dict[str, Callable[[dict], Any]] = {}
        self._down: Set[str] = set()
        self._routes: Dict[str, Route] = {}
        self._peers: Dict[Route, _Peer] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._closed = False
        #: ``(host, port)`` actually bound (port 0 resolves here).
        self.bound: Optional[Route] = None
        #: Fired with ``(name, boot_id, body)`` on every HELLO frame.
        self.on_hello: Optional[Callable[[str, str, dict], None]] = None
        # counters (metrics parity with Network / SessionLayer)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.dropped_no_handler = 0
        self.dropped_to_down = 0
        self.protocol_errors = 0
        self.reconnects = 0
        self.outbox_dropped = 0
        self.dead_letters: list = []
        self.dead_letters_dropped = 0
        #: Exceptions a protocol handler may raise that mean the process
        #: must fail-stop instead of counting a protocol error — e.g. a
        #: durability :class:`~repro.durability.segments.DiskFault`: a
        #: node that cannot log must not keep voting.  The owner
        #: installs the handler; ``None`` keeps errors contained.
        self.fatal_error_types: Tuple[type, ...] = ()
        self.on_fatal: Optional[Callable[[BaseException], None]] = None

    # -- the Network duck type ------------------------------------------------

    def register(
        self, address: str, handler: Callable[[Message], Any], replace: bool = False
    ) -> None:
        if address in self._handlers and not replace:
            raise ConfigError(f"endpoint {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)

    def note_endpoint_down(self, address: str) -> None:
        self._down.add(address)

    def note_endpoint_up(self, address: str) -> None:
        self._down.discard(address)

    def send(self, message: Message) -> float:
        """Route one protocol envelope; returns a nominal delay of 0.

        Locally-registered destinations get a loopback delivery via the
        kernel (never a socket); remote destinations are framed and
        queued. An unroutable destination raises ``SimulationError``
        exactly like the simulated ``Network``.
        """
        if self._closed:
            raise SimulationError("transport closed")
        self.messages_sent += 1
        dst = message.dst
        if dst in self._handlers:
            self._deliver_message(message)
            return 0.0
        route = self._routes.get(dst)
        if route is None:
            raise SimulationError(f"no endpoint registered for {dst!r}")
        self._enqueue(route, encode_message(message))
        return 0.0

    # -- routing + control plane ----------------------------------------------

    def add_route(self, address: str, host: str, port: int) -> None:
        """Map a protocol address to a peer's listening socket."""
        self._routes[address] = (host, int(port))

    def routes(self) -> Dict[str, Route]:
        return dict(self._routes)

    def register_control(self, address: str, handler: Callable[[dict], Any]) -> None:
        self._control_handlers[address] = handler

    def send_control(self, address: str, body: dict) -> None:
        """Send an out-of-band control frame to ``address``."""
        body = dict(body)
        body["dst"] = address
        if address in self._control_handlers:
            handler = self._control_handlers[address]
            self.kernel.call_soon(lambda: self._invoke_control(handler, body))
            return
        route = self._routes.get(address)
        if route is None:
            raise SimulationError(f"no route to control endpoint {address!r}")
        self._enqueue(route, encode_frame(FRAME_CONTROL, body))

    # -- delivery -------------------------------------------------------------

    def _deliver_message(self, message: Message) -> None:
        def dispatch() -> None:
            if self._closed:
                return
            if message.dst in self._down:
                self.dropped_to_down += 1
                return
            handler = self._handlers.get(message.dst)
            if handler is None:
                self.dropped_no_handler += 1
                return
            try:
                handler(message)
                self.messages_delivered += 1
            except Exception as exc:
                if self._maybe_fatal(exc):
                    return
                self.protocol_errors += 1
                print(
                    f"rt[{self.name}]: handler error for {message.type} -> "
                    f"{message.dst}",
                    file=sys.stderr,
                )
                traceback.print_exc(file=sys.stderr)

        self.kernel.call_soon(dispatch)

    def _maybe_fatal(self, exc: BaseException) -> bool:
        if self.fatal_error_types and isinstance(exc, self.fatal_error_types):
            if self.on_fatal is not None:
                self.on_fatal(exc)
                return True
        return False

    def _invoke_control(self, handler: Callable[[dict], Any], body: dict) -> None:
        try:
            handler(body)
        except Exception as exc:
            if self._maybe_fatal(exc):
                return
            self.protocol_errors += 1
            print(
                f"rt[{self.name}]: control handler error for op "
                f"{body.get('op')!r}",
                file=sys.stderr,
            )
            traceback.print_exc(file=sys.stderr)

    def _dispatch_frame(self, kind: int, body: Any) -> None:
        if kind == FRAME_MESSAGE:
            self._deliver_message(message_from_body(body))
        elif kind == FRAME_CONTROL:
            dst = body.get("dst")
            handler = self._control_handlers.get(dst)
            if handler is None:
                self.dropped_no_handler += 1
                return
            self.kernel.call_soon(lambda: self._invoke_control(handler, body))
        elif kind == FRAME_HELLO:
            if self.on_hello is not None:
                try:
                    self.on_hello(body["name"], body["boot"], body)
                except Exception:
                    self.protocol_errors += 1
                    traceback.print_exc(file=sys.stderr)

    # -- outbound: per-peer queue + writer task -------------------------------

    def _enqueue(self, route: Route, frame: bytes) -> None:
        peer = self._peers.get(route)
        if peer is None:
            peer = self._peers[route] = _Peer(route)
            peer.task = asyncio.ensure_future(self._peer_writer(peer))
        if len(peer.queue) >= self.outbox_limit:
            peer.queue.popleft()
            peer.dropped += 1
            self.outbox_dropped += 1
        peer.queue.append(frame)
        peer.wake.set()

    def _hello_body(self) -> dict:
        return {"name": self.name, "boot": self.boot_id}

    async def _peer_writer(self, peer: _Peer) -> None:
        backoff = RECONNECT_MIN
        while not self._closed and not peer.closed:
            if peer.writer is None:
                try:
                    reader, writer = await asyncio.open_connection(*peer.route)
                except OSError:
                    try:
                        await asyncio.sleep(backoff)
                    except asyncio.CancelledError:
                        return
                    backoff = min(backoff * 2.0, RECONNECT_MAX)
                    continue
                backoff = RECONNECT_MIN
                peer.writer = writer
                self.reconnects += 1
                # the far side replies with its own HELLO on this
                # connection, so a restart is noticed even before it
                # dials us back.
                task = asyncio.ensure_future(
                    self._read_stream(reader, writer, peer=peer)
                )
                self._conn_tasks.add(task)
                task.add_done_callback(self._conn_tasks.discard)
                try:
                    writer.write(encode_frame(FRAME_HELLO, self._hello_body()))
                    await writer.drain()
                except (OSError, asyncio.CancelledError):
                    self._drop_peer_conn(peer)
                    continue
            if not peer.queue:
                peer.wake.clear()
                try:
                    await peer.wake.wait()
                except asyncio.CancelledError:
                    return
                continue
            frame = peer.queue.popleft()
            try:
                peer.writer.write(frame)
                await peer.writer.drain()
                self.frames_sent += 1
            except (OSError, asyncio.CancelledError):
                peer.queue.appendleft(frame)
                self._drop_peer_conn(peer)

    def _drop_peer_conn(self, peer: _Peer) -> None:
        writer, peer.writer = peer.writer, None
        if writer is not None:
            with contextlib.suppress(Exception):
                writer.close()

    # -- inbound: server + shared reader loop ---------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Route:
        """Bind the listening socket; port 0 picks an ephemeral port.

        Returns the actually-bound ``(host, port)`` — the readiness
        point for launchers: once this returns, peers can connect.
        """
        self._server = await asyncio.start_server(self._on_client, host=host, port=port)
        sockname = self._server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        return self.bound

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed:
            with contextlib.suppress(Exception):
                writer.close()
            return
        # Track the handler task: ``server.wait_closed()`` does not wait
        # for accepted connections (pre-3.12.1), so ``close()`` cancels
        # these explicitly — otherwise a blocked read could dispatch one
        # last batch of frames after the transport shut down.
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        # greet the dialler so it learns our boot id without needing a
        # route back to us.
        try:
            writer.write(encode_frame(FRAME_HELLO, self._hello_body()))
            await writer.drain()
        except (OSError, asyncio.CancelledError):
            with contextlib.suppress(Exception):
                writer.close()
            return
        await self._read_stream(reader, writer, peer=None)

    async def _read_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: Optional[_Peer],
    ) -> None:
        decoder = FrameDecoder()
        try:
            while not self._closed:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except WireError as exc:
                    self.protocol_errors += 1
                    print(
                        f"rt[{self.name}]: dropping connection: {exc}",
                        file=sys.stderr,
                    )
                    break
                for kind, body in frames:
                    self.frames_received += 1
                    self._dispatch_frame(kind, body)
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            if peer is not None and peer.writer is writer:
                self._drop_peer_conn(peer)
            else:
                with contextlib.suppress(Exception):
                    writer.close()

    # -- lifecycle ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return sum(len(peer.queue) for peer in self._peers.values())

    def stats(self) -> Dict[str, Any]:
        """Counters + per-peer outbound queue depth and drops."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "protocol_errors": self.protocol_errors,
            "reconnects": self.reconnects,
            "outbox_limit": self.outbox_limit,
            "outbox_dropped": self.outbox_dropped,
            "peers": {
                f"{route[0]}:{route[1]}": {
                    "queued": len(peer.queue),
                    "dropped": peer.dropped,
                    "connected": peer.writer is not None,
                }
                for route, peer in self._peers.items()
            },
        }

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        tasks = []
        for peer in self._peers.values():
            peer.closed = True
            peer.wake.set()
            self._drop_peer_conn(peer)
            if peer.task is not None:
                peer.task.cancel()
                tasks.append(peer.task)
        for task in list(self._conn_tasks):
            task.cancel()
            tasks.append(task)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
