"""Durable per-process history journals and their post-hoc merge.

Each runtime process subscribes a :class:`HistoryJournal` to its local
:class:`~repro.history.model.History`: every recorded operation is
appended to an on-disk journal with a write+flush per op, the same
durability stance as the WAL's ``SegmentWriter`` — a SIGKILL never
loses an operation that the protocol acted on, because history
observers fire synchronously inside ``record_*`` (before any reply
leaves the process).

The journal serves two masters:

- **Recovery**: an agent's committed store is rebuilt by replaying its
  own journal (buffer WRITEs per subtransaction, apply at
  LOCAL_COMMIT) — see :func:`committed_state`.
- **Verification**: the storm client merges every process's journal
  into a :class:`MergedHistory` and runs
  ``check_atomic_commitment`` over it.  Only *per-site* operation
  order matters to that checker, and each site's operations live
  entirely in that site's own journal (global decisions carry no
  site), so concatenation preserves everything the checker needs even
  though wall-clocks across processes are not comparable.

Record layout per op (little-endian), the WAL codec's shape::

    u32 length | u32 crc32(blob) | blob = pickle(Operation)

A torn tail (truncated or CRC-damaged final record, the SIGKILL
signature) is silently dropped — never bridged.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.ids import DataItemId, SubtxnId
from repro.history.model import History, Operation, OpKind

_RECORD = struct.Struct("<II")


class HistoryJournal:
    """Append-only, flush-per-op journal of one process's history."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # append mode: a restarted process continues its own journal.
        self._file = open(path, "ab")
        self.appended = 0

    def attach(self, history: History) -> None:
        history.subscribe(self.append)

    def append(self, op: Operation) -> None:
        blob = pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.write(_RECORD.pack(len(blob), zlib.crc32(blob)) + blob)
        # flush to the OS: survives SIGKILL of this process (fsync is
        # only needed to survive the *machine*, which the kill tests
        # don't exercise).
        self._file.flush()
        self.appended += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_journal(path: str) -> List[Operation]:
    """Read every intact operation; stop at the first torn record."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return []
    ops: List[Operation] = []
    offset = 0
    while offset + _RECORD.size <= len(data):
        length, crc = _RECORD.unpack_from(data, offset)
        start = offset + _RECORD.size
        end = start + length
        if end > len(data):
            break  # torn tail
        blob = data[start:end]
        if zlib.crc32(blob) != crc:
            break  # damaged tail; never bridge past damage
        ops.append(pickle.loads(blob))
        offset = end
    return ops


class MergedHistory:
    """A ``History``-shaped read-only view over merged journal ops.

    Exposes exactly what the invariant checkers consume: ``ops``,
    ``sites()``, ``txns()``, ``globally_committed()``.
    """

    def __init__(self, ops: Sequence[Operation]) -> None:
        self._ops: Tuple[Operation, ...] = tuple(ops)

    @property
    def ops(self) -> Tuple[Operation, ...]:
        return self._ops

    def sites(self) -> List[str]:
        seen = dict.fromkeys(
            op.site for op in self._ops if op.site is not None
        )
        return list(seen)

    def txns(self):
        return dict.fromkeys(op.txn for op in self._ops if op.txn is not None)

    def globally_committed(self):
        return [op.txn for op in self._ops if op.kind is OpKind.GLOBAL_COMMIT]


def merge_journals(paths: Iterable[str]) -> MergedHistory:
    """Concatenate journals (sorted by path for determinism)."""
    ops: List[Operation] = []
    for path in sorted(paths):
        ops.extend(read_journal(path))
    return MergedHistory(ops)


def committed_state(
    ops: Iterable[Operation],
) -> Tuple[Dict[DataItemId, object], Set[SubtxnId]]:
    """Replay one site's journal into its committed store image.

    WRITE operations buffer per subtransaction and apply atomically at
    that subtransaction's LOCAL_COMMIT; aborted or still-pending
    subtransactions leave no trace.  A ``None`` value is a delete.
    Returns ``(item -> value, committed subtxn ids)``.
    """
    pending: Dict[SubtxnId, List[Tuple[DataItemId, object]]] = {}
    state: Dict[DataItemId, object] = {}
    committed: Set[SubtxnId] = set()
    for op in ops:
        if op.subtxn is None:
            continue
        if op.kind is OpKind.WRITE:
            pending.setdefault(op.subtxn, []).append((op.item, op.value))
        elif op.kind is OpKind.LOCAL_COMMIT:
            committed.add(op.subtxn)
            for item, value in pending.pop(op.subtxn, ()):
                if value is None:
                    state.pop(item, None)
                else:
                    state[item] = value
        elif op.kind is OpKind.LOCAL_ABORT:
            pending.pop(op.subtxn, None)
    return state, committed


def journal_path(root: str, name: str) -> str:
    return os.path.join(root, f"journal-{name}.log")
