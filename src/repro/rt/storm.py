"""``python -m repro storm``: drive a live cluster, kill, recover, verify.

The storm client reads ``cluster.json`` (or ``--launch``\\ es a cluster
itself), generates the deterministic debit-credit workload against the
same bank shape and seed the agents loaded, and submits it to the live
coordinator over control frames with a bounded in-flight window,
measuring wall-clock commit latency client-side.

``--kill-agent N --at prepared`` arms a crash probe inside agent ``N``
that SIGKILLs the process at the exact ``post-prepare`` protocol point
(after the forced prepare record, before the READY vote leaves). The
cluster supervisor respawns the process on the same port; the new
incarnation replays its WAL + journal, re-enters the prepared state,
and resumes in-doubt subtransactions to the coordinator's logged
decision.

``--kill-coordinator --at sn_drawn|decision_logged|mid_broadcast``
does the same to the Coordinating Site, bracketing its DECISION
record: before it exists, right after it is forced (zero COMMITs
sent), and halfway through the commit broadcast.  Outcome replies for
in-flight transactions die with the process — they are *not*
resubmitted (that would risk double-apply); instead verification
derives the committed set from the merged journals, where
GLOBAL_COMMIT is flushed before any COMMIT leaves, and checks that
everything the client *did* see committed is in that set.

Afterwards the client runs the invariant battery:

- the merged per-process history journals must pass
  ``check_atomic_commitment`` (no site commits what another aborted);
- per site, ``sum(branch) == sum(tellers)``;
- federation-wide, ``sum(accounts)`` must equal the initial balance
  plus exactly the deltas of transactions reported committed — the
  end-to-end exactly-once test across the kill;
- a killed agent must actually have restarted from a non-empty WAL.

Results (throughput, p50/p99 commit latency, counters) merge into
``BENCH_rt.json`` under the run label (``healthy`` / ``kill_recover``).
"""

from __future__ import annotations

import asyncio
import contextlib
import glob
import json
import os
import sys
import time
from collections import deque
from typing import Dict, List, Optional

from repro.federation.shard import ShardMap, shard_of_key
from repro.history.invariants import check_atomic_commitment
from repro.rt.host import ProtocolHost
from repro.rt.journal import merge_journals
from repro.rt.node import (
    agent_control,
    allocator_control,
    coordinator_control,
    resolve_coordinator_kill_point,
    resolve_kill_point,
)
from repro.rt.tuning import BankConfig
from repro.sim.metrics import percentile
from repro.workload.debitcredit import DebitCreditConfig, DebitCreditGenerator

CLIENT_CONTROL = "ctl:storm"
LAUNCH_TIMEOUT = 60.0


class StormClient:
    def __init__(self, args) -> None:
        self.args = args
        self.data_root = args.data_root
        self.cluster_proc: Optional[asyncio.subprocess.Process] = None
        self.cluster_restarts = 0
        self._cluster_drain: Optional[asyncio.Task] = None
        self._cluster_stderr_task: Optional[asyncio.Task] = None
        self._cluster_stderr: deque = deque(maxlen=40)
        #: Every supervisor event (exited/restarted/...) with a client
        #: clock timestamp — the chaos drill turns these into per-fault
        #: recovery times.
        self.cluster_events: List[dict] = []
        self.host: Optional[ProtocolHost] = None
        self.reply: Dict[str, object] = {}
        self.outcomes: Dict[int, dict] = {}
        self.outcome_events: Dict[int, asyncio.Event] = {}
        self.stats_waiters: Dict[str, asyncio.Future] = {}
        self.ack_waiters: Dict[str, asyncio.Future] = {}
        self.missing: List[int] = []
        self.failures: List[str] = []
        #: Extra argv for the ``--launch``\ ed cluster (``--nemesis``,
        #: ``--tuning-json ...``); set by the chaos drill.
        self.extra_cluster_args: List[str] = []
        #: Optional ``async f(info) -> None`` run concurrently with the
        #: traffic (the chaos drill's nemesis plan executor).
        self.side_task_factory = None
        self.killed_coordinator: Optional[str] = None
        self.cluster_info: Optional[dict] = None
        self.report: Optional[dict] = None
        # -- federation routing state (empty on a classic cluster) -----
        #: Coordinator name -> its control address; the full route table
        #: from cluster.json (one entry on a classic cluster).
        self.ctl_coords: Dict[str, str] = {}
        self.coordinator_infos: List[dict] = []
        self.shard_map: Optional[ShardMap] = None
        self.n_shards = 0
        #: WRONG_SHARD redirects this client followed (handoff races).
        self.forwarded = 0
        #: Submissions that still ended wrong-shard after redirecting.
        self.wrong_shard_refused = 0
        self.handoff_report: Optional[dict] = None

    # -- cluster attachment ---------------------------------------------------

    async def _launch_cluster(self) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "cluster",
            "--data-root",
            self.data_root,
            "--json",
        ]
        argv += list(self.extra_cluster_args)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.cluster_proc = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=env,
        )
        self._cluster_stderr_task = asyncio.ensure_future(
            self._drain_cluster_stderr()
        )
        while True:
            line = await asyncio.wait_for(
                self.cluster_proc.stdout.readline(), LAUNCH_TIMEOUT
            )
            if not line:
                await asyncio.sleep(0.2)  # let stderr drain
                excerpt = "".join(self._cluster_stderr)[-2000:].strip()
                raise RuntimeError(
                    "cluster exited before becoming ready"
                    + (f"; stderr: {excerpt}" if excerpt else "")
                )
            event = json.loads(line)
            if event.get("event") == "ready" and event.get("role") == "cluster":
                break
        self._cluster_drain = asyncio.ensure_future(self._watch_cluster())

    async def _drain_cluster_stderr(self) -> None:
        with contextlib.suppress(Exception):
            while True:
                line = await self.cluster_proc.stderr.readline()
                if not line:
                    return
                text = line.decode(errors="replace")
                self._cluster_stderr.append(text)
                print(f"[cluster!] {text.rstrip()}", file=sys.stderr, flush=True)

    async def _watch_cluster(self) -> None:
        loop = asyncio.get_running_loop()
        with contextlib.suppress(Exception):
            while True:
                line = await self.cluster_proc.stdout.readline()
                if not line:
                    return
                event = json.loads(line)
                event["t"] = round(loop.time(), 4)
                self.cluster_events.append(event)
                if event.get("event") == "restarted":
                    self.cluster_restarts += 1

    async def _stop_cluster(self) -> None:
        if self.cluster_proc is None:
            return
        for task in (self._cluster_drain, self._cluster_stderr_task):
            if task is not None:
                task.cancel()
        if self.cluster_proc.returncode is None:
            with contextlib.suppress(ProcessLookupError):
                self.cluster_proc.terminate()
            try:
                await asyncio.wait_for(self.cluster_proc.wait(), 10.0)
            except asyncio.TimeoutError:
                with contextlib.suppress(ProcessLookupError):
                    self.cluster_proc.kill()
                await self.cluster_proc.wait()

    # -- control plane --------------------------------------------------------

    def _on_control(self, body: dict) -> None:
        op = body.get("op")
        if op == "outcome":
            number = body["txn"]
            self.outcomes[number] = body
            event = self.outcome_events.get(number)
            if event is not None:
                event.set()
        elif op == "stats":
            waiter = self.stats_waiters.pop(body.get("from", ""), None)
            if waiter is not None and not waiter.done():
                waiter.set_result(body["stats"])
        elif op in ("armed", "routes-ok", "drained", "adopted", "shard-map-ok"):
            waiter = self.ack_waiters.pop(op, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(body)

    async def _attach(self, info: dict) -> None:
        self.host = ProtocolHost("storm")
        await self.host.start("127.0.0.1", 0)
        bound = self.host.bound
        self.reply = {
            "address": CLIENT_CONTROL,
            "host": bound[0],
            "port": bound[1],
        }
        self.host.wire.register_control(CLIENT_CONTROL, self._on_control)
        # The full coordinator route table: a federated cluster.json
        # lists every coordinator under "coordinators"; a classic one
        # only has the singular "coordinator" (a one-entry table).
        self.coordinator_infos = list(
            info.get("coordinators") or [info["coordinator"]]
        )
        for coord in self.coordinator_infos:
            ctl = coordinator_control(coord["name"])
            self.ctl_coords[coord["name"]] = ctl
            self.host.wire.add_route(ctl, coord["host"], coord["port"])
        self.ctl_coord = coordinator_control(self.coordinator_infos[0]["name"])
        federation = info.get("federation")
        if federation:
            self.shard_map = ShardMap.from_dict(federation["shard_map"])
            self.n_shards = int(federation["n_shards"])
            alloc = federation.get("allocator")
            if alloc:
                self.host.wire.add_route(
                    allocator_control(), alloc["host"], alloc["port"]
                )
        for agent in info["agents"]:
            self.host.wire.add_route(
                agent_control(agent["site"]), agent["host"], agent["port"]
            )

    def _ctl_for(self, number: int) -> str:
        """The control address of the coordinator owning ``number``'s shard."""
        if self.shard_map is None:
            return self.ctl_coord
        owner = self.shard_map.owner(shard_of_key(number, self.n_shards))
        return self.ctl_coords.get(owner, self.ctl_coord)

    async def _await_ack(self, op: str, timeout: float = 10.0) -> dict:
        waiter = asyncio.get_running_loop().create_future()
        self.ack_waiters[op] = waiter
        return await asyncio.wait_for(waiter, timeout)

    async def _fetch_stats(self, name: str, address: str) -> Optional[dict]:
        waiter = asyncio.get_running_loop().create_future()
        self.stats_waiters[name] = waiter
        try:
            self.host.wire.send_control(
                address, {"op": "stats", "reply": self.reply}
            )
            return await asyncio.wait_for(waiter, 10.0)
        except (asyncio.TimeoutError, Exception):
            self.stats_waiters.pop(name, None)
            return None

    # -- the run --------------------------------------------------------------

    async def run(self) -> int:
        args = self.args
        if getattr(args, "federated", False) and args.launch:
            self.extra_cluster_args += [
                "--coordinators",
                str(args.coordinators),
                "--n-shards",
                str(args.n_shards),
                "--lease-span",
                str(args.lease_span),
            ]
        if args.launch:
            await self._launch_cluster()
        cluster_json = os.path.join(self.data_root, "cluster.json")
        with open(cluster_json) as fh:
            info = json.load(fh)
        self.cluster_info = info
        bank = BankConfig.from_dict(info["bank"])
        await self._attach(info)

        if getattr(args, "kill_coordinator", False):
            point = resolve_coordinator_kill_point(args.at)
            self.host.wire.send_control(
                self.ctl_coord,
                {
                    "op": "arm-kill",
                    "at": point,
                    "after": args.kill_after,
                    "reply": self.reply,
                },
            )
            armed = await self._await_ack("armed")
            self.killed_coordinator = info["coordinator"]["name"]
            print(
                f"storm: armed SIGKILL in coordinator "
                f"{self.killed_coordinator} at {armed['point']} "
                f"(hit #{args.kill_after})",
                flush=True,
            )

        killed_site = None
        if args.kill_agent:
            index = args.kill_agent - 1
            if not 0 <= index < len(bank.sites):
                raise SystemExit(
                    f"--kill-agent {args.kill_agent} out of range "
                    f"(1..{len(bank.sites)})"
                )
            killed_site = bank.sites[index]
            point = resolve_kill_point(args.at)
            self.host.wire.send_control(
                agent_control(killed_site),
                {
                    "op": "arm-kill",
                    "at": point,
                    "after": args.kill_after,
                    "reply": self.reply,
                },
            )
            armed = await self._await_ack("armed")
            print(
                f"storm: armed SIGKILL in agent {killed_site} at "
                f"{armed['point']} (hit #{args.kill_after})",
                flush=True,
            )

        workload = DebitCreditConfig(
            sites=tuple(bank.sites),
            n_transactions=args.txns,
            accounts_per_branch=bank.accounts_per_branch,
            tellers_per_branch=bank.tellers_per_branch,
            remote_fraction=args.remote_fraction,
            initial_account_balance=bank.initial_account_balance,
            seed=args.seed,
        )
        generated = DebitCreditGenerator(workload).generate()
        scheduled = generated.schedule.globals_

        loop = asyncio.get_running_loop()
        window = asyncio.Semaphore(args.inflight)
        latencies: List[float] = []
        started = loop.time()

        async def submit_one(item) -> None:
            async with window:
                number = item.spec.txn.number
                t0 = loop.time()
                target = self._ctl_for(number)
                # Follow WRONG_SHARD redirects a bounded number of hops:
                # the shard map this client routed by can lose a race
                # with a live handoff, and the refusal's redirect hint
                # names the coordinator that now owns the shard.
                for _hop in range(4):
                    event = asyncio.Event()
                    self.outcome_events[number] = event
                    self.host.wire.send_control(
                        target,
                        {"op": "submit", "spec": item.spec, "reply": self.reply},
                    )
                    try:
                        await asyncio.wait_for(event.wait(), args.txn_timeout)
                    except asyncio.TimeoutError:
                        self.missing.append(number)
                        return
                    outcome = self.outcomes[number]
                    redirect = outcome.get("redirect")
                    if (
                        outcome["committed"]
                        or outcome.get("reason") != "wrong-shard"
                        or redirect is None
                    ):
                        break
                    next_target = self.ctl_coords.get(redirect)
                    if next_target is None or next_target == target:
                        break
                    target = next_target
                    self.forwarded += 1
                outcome = self.outcomes[number]
                if outcome.get("reason") == "wrong-shard":
                    self.wrong_shard_refused += 1
                outcome["wall_latency"] = loop.time() - t0
                outcome["t_done"] = loop.time()
                if outcome["committed"]:
                    latencies.append(outcome["wall_latency"])

        side = None
        if self.side_task_factory is not None:
            side = asyncio.ensure_future(self.side_task_factory(info))
        handoff_task = None
        kill_during = getattr(args, "kill_during_handoff", "none")
        if getattr(args, "handoff", False) or kill_during != "none":
            if self.shard_map is None or len(self.ctl_coords) < 2:
                self.failures.append(
                    "--handoff requires a federated cluster with >= 2 "
                    "coordinators"
                )
            else:
                handoff_task = asyncio.ensure_future(
                    self._run_handoff(info, kill_during)
                )
        try:
            await asyncio.wait_for(
                asyncio.gather(*(submit_one(item) for item in scheduled)),
                args.timeout,
            )
        except asyncio.TimeoutError:
            self.failures.append(
                f"overall deadline ({args.timeout}s) hit with "
                f"{len(self.outcomes)}/{len(scheduled)} outcomes"
            )
        duration = loop.time() - started
        if handoff_task is not None:
            try:
                await asyncio.wait_for(handoff_task, args.timeout)
            except Exception as exc:
                handoff_task.cancel()
                self.failures.append(f"handoff drill failed: {exc!r}")
        if side is not None:
            # the fault plan may outlast the traffic: let it finish (it
            # heals the cluster at its end) before verifying.
            try:
                await asyncio.wait_for(side, args.timeout)
            except Exception as exc:
                side.cancel()
                self.failures.append(f"nemesis side task failed: {exc!r}")

        # settle: let COMMIT-ACK / ROLLBACK retransmissions drain so
        # the store images below are final.
        await asyncio.sleep(args.settle)

        committed = sorted(
            number for number, out in self.outcomes.items() if out["committed"]
        )
        aborted = sorted(
            number
            for number, out in self.outcomes.items()
            if not out["committed"]
        )
        report = await self._verify(
            info, bank, generated, committed, killed_site
        )
        if kill_during != "none":
            default_label = f"handoff_kill_{kill_during}"
        elif handoff_task is not None:
            default_label = "handoff"
        elif self.killed_coordinator:
            default_label = "coord_kill"
        elif killed_site:
            default_label = "kill_recover"
        elif self.shard_map is not None and len(self.ctl_coords) > 1:
            default_label = "federated"
        else:
            default_label = "healthy"
        report.update(
            {
                "label": args.label or default_label,
                "txns": len(scheduled),
                "committed": len(committed),
                "aborted": len(aborted),
                "missing": len(self.missing),
                "duration_s": round(duration, 3),
                "throughput_committed_per_s": round(
                    len(committed) / duration, 3
                )
                if duration > 0
                else 0.0,
                "latency_p50_s": round(percentile(latencies, 0.50), 4),
                "latency_p99_s": round(percentile(latencies, 0.99), 4),
                "kill": {
                    "site": killed_site,
                    "coordinator": self.killed_coordinator,
                    "at": (
                        args.at
                        if (killed_site or self.killed_coordinator)
                        else None
                    ),
                    "cluster_restarts": self.cluster_restarts,
                },
                "failures": self.failures,
            }
        )
        self.report = report
        self._record_bench(report)
        self._print_report(report)

        if args.quit_cluster and not args.launch:
            for agent in info["agents"]:
                with contextlib.suppress(Exception):
                    self.host.wire.send_control(
                        agent_control(agent["site"]), {"op": "quit"}
                    )
            for ctl in self.ctl_coords.values():
                with contextlib.suppress(Exception):
                    self.host.wire.send_control(ctl, {"op": "quit"})
            if (self.cluster_info.get("federation") or {}).get("allocator"):
                with contextlib.suppress(Exception):
                    self.host.wire.send_control(
                        allocator_control(), {"op": "quit"}
                    )
            await asyncio.sleep(0.2)

        await self.host.close()
        if args.launch:
            await self._stop_cluster()
        return 1 if self.failures else 0

    # -- live shard handoff (federated drill) ---------------------------------

    #: Let some traffic land on the source shard before migrating it.
    HANDOFF_START_DELAY = 0.3
    ADOPT_RETRY = 1.0
    ADOPT_ATTEMPTS = 30

    async def _run_handoff(self, info: dict, kill_during: str) -> None:
        """Migrate one shard between two live coordinators mid-traffic.

        Drain (``handoff-out``) → epoch bump → adopt (``handoff-in``,
        force-logged by the target) → ``shard-map`` broadcast.
        ``kill_during`` SIGKILLs the source mid-drain or the target just
        before adoption; the supervisor respawns the victim on its old
        port and this orchestration retries until the handoff lands —
        the agents' epoch fence keeps every interleaving safe.
        """
        loop = asyncio.get_running_loop()
        await asyncio.sleep(self.HANDOFF_START_DELAY)
        fed = info["federation"]
        names = [c["name"] for c in self.coordinator_infos]
        source, target = names[0], names[1]
        shards = self.shard_map.shards_of(source)
        if not shards:
            raise RuntimeError(f"coordinator {source} owns no shard")
        shard = shards[0]
        drain_timeout = float(fed.get("drain_timeout", 5.0))
        t0 = loop.time()
        report: Dict[str, object] = {
            "shard": shard,
            "from": source,
            "to": target,
            "killed": None,
            "forced": False,
        }

        # Phase 1: drain the source's in-flight globals on the shard.
        waiter = loop.create_future()
        self.ack_waiters["drained"] = waiter
        self.host.wire.send_control(
            self.ctl_coords[source],
            {
                "op": "handoff-out",
                "shard": shard,
                "to": target,
                "reply": self.reply,
            },
        )
        if kill_during == "source":
            await asyncio.sleep(0.2)
            self.killed_coordinator = source
            report["killed"] = source
            with contextlib.suppress(Exception):
                self.host.wire.send_control(
                    self.ctl_coords[source], {"op": "die"}
                )
            print(
                f"storm: SIGKILLed handoff source {source} mid-drain",
                flush=True,
            )
        try:
            drained = await asyncio.wait_for(waiter, drain_timeout + 5.0)
            report["forced"] = bool(drained.get("forced"))
        except asyncio.TimeoutError:
            # The source died (or wedged) mid-drain: the epoch fence
            # makes forcing the ownership switch safe regardless.
            self.ack_waiters.pop("drained", None)
            report["forced"] = True

        # Phase 2: bump the epoch and have the target adopt (force-
        # logged before the ack, so a later respawn re-claims it).
        if kill_during == "target":
            self.killed_coordinator = target
            report["killed"] = target
            with contextlib.suppress(Exception):
                self.host.wire.send_control(
                    self.ctl_coords[target], {"op": "die"}
                )
            print(
                f"storm: SIGKILLed handoff target {target} pre-adoption",
                flush=True,
            )
        epoch = self.shard_map.epoch(shard) + 1
        adopted = None
        for _attempt in range(self.ADOPT_ATTEMPTS):
            waiter = loop.create_future()
            self.ack_waiters["adopted"] = waiter
            with contextlib.suppress(Exception):
                self.host.wire.send_control(
                    self.ctl_coords[target],
                    {
                        "op": "handoff-in",
                        "shard": shard,
                        "epoch": epoch,
                        "reply": self.reply,
                    },
                )
            try:
                adopted = await asyncio.wait_for(waiter, self.ADOPT_RETRY)
                break
            except asyncio.TimeoutError:
                self.ack_waiters.pop("adopted", None)
        if adopted is None:
            raise RuntimeError(
                f"target {target} never acknowledged adoption of shard {shard}"
            )

        # Phase 3: install + broadcast the new map.  The deposed owner
        # drops its drain mark on receipt; anyone still routing to it
        # gets a WRONG_SHARD redirect to the new owner meanwhile.
        self.shard_map.adopt(shard, target, epoch)
        for ctl in self.ctl_coords.values():
            with contextlib.suppress(Exception):
                self.host.wire.send_control(
                    ctl, {"op": "shard-map", "map": self.shard_map.to_dict()}
                )
        report["epoch"] = epoch
        report["duration_s"] = round(loop.time() - t0, 3)
        self.handoff_report = report
        print(
            f"storm: handoff shard {shard} {source}->{target} epoch {epoch} "
            f"({'forced' if report['forced'] else 'clean'}, "
            f"{report['duration_s']}s"
            + (f", killed {report['killed']}" if report["killed"] else "")
            + ")",
            flush=True,
        )

    # -- verification ---------------------------------------------------------

    async def _verify(
        self, info, bank, generated, committed, killed_site
    ) -> dict:
        # (1) atomic commitment over the merged per-process journals.
        journals = sorted(
            glob.glob(os.path.join(self.data_root, "journal-*.log"))
        )
        merged = merge_journals(journals)
        violations = check_atomic_commitment(merged)
        if violations:
            self.failures.extend(
                f"atomic commitment: {violation}" for violation in violations
            )
        # The *journals* are the authority on what committed: the
        # coordinator journals GLOBAL_COMMIT (flushed) before any COMMIT
        # leaves — in particular before any kill probe can fire — so the
        # set survives a coordinator SIGKILL that takes the client-bound
        # outcome replies with it.
        journal_committed = {
            txn.number for txn in merged.globally_committed()
        }
        stray = sorted(set(committed) - journal_committed)
        if stray:
            self.failures.append(
                f"client saw commits the journals never logged: {stray[:10]}"
            )
        if self.missing and not self.killed_coordinator:
            self.failures.append(
                f"{len(self.missing)} transactions never reported an outcome: "
                f"{self.missing[:10]}"
            )

        # (2)+(3) bank invariants from the live stores.  The store
        # totals include in-place writes of still-open (undecided)
        # subtransactions, so the invariants are only defined at
        # quiescence: poll ``open_txns`` down to zero first — with the
        # decision inquiry enabled, every orphan of a killed
        # coordinator resolves to presumed abort within bounded time.
        stats: Dict[str, Optional[dict]] = {}
        deadline = asyncio.get_running_loop().time() + max(
            10.0, self.args.settle
        )
        while True:
            for agent in info["agents"]:
                site = agent["site"]
                stats[site] = await self._fetch_stats(
                    f"agent-{site}", agent_control(site)
                )
            open_txns = sum(
                s.get("open_txns", 0) for s in stats.values() if s is not None
            )
            if open_txns == 0:
                break
            if asyncio.get_running_loop().time() >= deadline:
                self.failures.append(
                    f"{open_txns} subtransactions still open at "
                    "verification (quiescence never reached)"
                )
                break
            await asyncio.sleep(0.5)
        coords_stats: Dict[str, Optional[dict]] = {}
        for coord in self.coordinator_infos:
            name = coord["name"]
            coords_stats[name] = await self._fetch_stats(
                f"coord-{name}", coordinator_control(name)
            )
        coord_stats = coords_stats[self.coordinator_infos[0]["name"]]
        alloc_stats = None
        federation = info.get("federation")
        if federation and federation.get("allocator"):
            alloc_stats = await self._fetch_stats(
                "allocator", allocator_control()
            )

        total_accounts = 0
        total_branch = 0
        for site, site_stats in stats.items():
            if site_stats is None:
                self.failures.append(f"agent {site} unreachable for stats")
                continue
            tables = site_stats["tables"]
            total_accounts += tables["accounts"]
            total_branch += tables["branch"]
            if tables["branch"] != tables["tellers"]:
                self.failures.append(
                    f"site {site}: branch={tables['branch']} != "
                    f"tellers={tables['tellers']}"
                )
        committed_delta = sum(
            generated.deltas[txn][2]
            for txn in generated.deltas
            if txn.number in journal_committed
        )
        initial_total = (
            len(bank.sites)
            * bank.accounts_per_branch
            * bank.initial_account_balance
        )
        if None not in stats.values():
            if total_accounts != initial_total + committed_delta:
                self.failures.append(
                    f"accounts total {total_accounts} != initial "
                    f"{initial_total} + committed deltas {committed_delta}"
                )
            if total_branch != committed_delta:
                self.failures.append(
                    f"branch total {total_branch} != committed deltas "
                    f"{committed_delta}"
                )

        # (4) the killed agent really died and really recovered.
        kill_stats = stats.get(killed_site) if killed_site else None
        if killed_site:
            if kill_stats is None:
                self.failures.append(
                    f"killed agent {killed_site} never came back"
                )
            elif kill_stats["wal_entries_at_boot"] < 1:
                self.failures.append(
                    f"killed agent {killed_site} restarted with an empty WAL "
                    "(the kill never hit the prepared window)"
                )

        # (5) a killed coordinator really respawned and replayed its
        # decision log.  At decision_logged / mid_broadcast the DECISION
        # record is forced but unacked, so the new incarnation must see
        # it in-doubt and re-drive it over the live sockets.
        if self.killed_coordinator:
            victim_stats = coords_stats.get(
                self.killed_coordinator, coord_stats
            )
            if victim_stats is None:
                self.failures.append(
                    f"killed coordinator {self.killed_coordinator} "
                    "never came back"
                )
            elif getattr(self.args, "kill_coordinator", False) and (
                self.args.at in ("decision_logged", "mid_broadcast")
            ):
                if victim_stats["in_doubt_at_boot"] < 1:
                    self.failures.append(
                        f"coordinator killed at {self.args.at} restarted "
                        "with no in-doubt decision (the kill missed the "
                        "in-doubt window)"
                    )

        # (6) federation rollup: routing, fencing, leases, handoff.
        federation_report = None
        if self.shard_map is not None:
            fenced = sum(
                (s or {}).get("fenced_begins", 0) for s in stats.values()
            )
            federation_report = {
                "coordinators": len(self.ctl_coords),
                "n_shards": self.n_shards,
                "forwarded_redirects": self.forwarded,
                "wrong_shard_refused_final": self.wrong_shard_refused,
                "fenced_begins": fenced,
                "handoff": self.handoff_report,
                "allocator": alloc_stats,
                "per_coordinator": {
                    name: (cs or {}).get("federation")
                    for name, cs in coords_stats.items()
                },
            }

        return {
            "invariants": {
                "atomic_commitment_violations": len(violations),
                "journals_merged": len(journals),
                "merged_ops": len(merged.ops),
                "journal_committed": len(journal_committed),
                "bank_checked": None not in stats.values(),
            },
            "agents": stats,
            "coordinator": coord_stats,
            "coordinators": coords_stats,
            "federation": federation_report,
        }

    # -- reporting ------------------------------------------------------------

    def _record_bench(self, report: dict) -> None:
        path = self.args.bench_out
        bench = {"schema": 1, "runs": {}}
        if os.path.exists(path):
            with contextlib.suppress(Exception):
                with open(path) as fh:
                    bench = json.load(fh)
        bench.setdefault("runs", {})
        bench["runs"][report["label"]] = {
            "txns": report["txns"],
            "committed": report["committed"],
            "aborted": report["aborted"],
            "missing": report["missing"],
            "duration_s": report["duration_s"],
            "throughput_committed_per_s": report["throughput_committed_per_s"],
            "latency_p50_s": report["latency_p50_s"],
            "latency_p99_s": report["latency_p99_s"],
            "kill": report["kill"],
            "violations": report["invariants"]["atomic_commitment_violations"],
            "ok": not report["failures"],
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
        fed = report.get("federation")
        if fed:
            bench["runs"][report["label"]]["federation"] = {
                "coordinators": fed["coordinators"],
                "n_shards": fed["n_shards"],
                "forwarded_redirects": fed["forwarded_redirects"],
                "wrong_shard_refused_final": fed["wrong_shard_refused_final"],
                "fenced_begins": fed["fenced_begins"],
                "handoff": fed["handoff"],
            }
        with open(path, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def _print_report(self, report: dict) -> None:
        if self.args.json_report:
            print(json.dumps(report, sort_keys=True, default=str), flush=True)
            return
        print(
            f"storm[{report['label']}]: {report['committed']}/{report['txns']} "
            f"committed, {report['aborted']} aborted, "
            f"{report['missing']} missing in {report['duration_s']}s "
            f"({report['throughput_committed_per_s']} commits/s, "
            f"p50 {report['latency_p50_s']}s, p99 {report['latency_p99_s']}s)",
            flush=True,
        )
        inv = report["invariants"]
        print(
            f"storm: merged {inv['journals_merged']} journals "
            f"({inv['merged_ops']} ops) -> "
            f"{inv['atomic_commitment_violations']} atomic-commitment "
            f"violations; bank checked: {inv['bank_checked']}",
            flush=True,
        )
        fed = report.get("federation")
        if fed:
            print(
                f"storm: federation {fed['coordinators']} coordinators x "
                f"{fed['n_shards']} shards; "
                f"{fed['forwarded_redirects']} redirects followed, "
                f"{fed['wrong_shard_refused_final']} final wrong-shard "
                f"refusals, {fed['fenced_begins']} fenced begins",
                flush=True,
            )
            handoff = fed.get("handoff")
            if handoff:
                print(
                    f"storm: handoff shard {handoff['shard']} "
                    f"{handoff['from']}->{handoff['to']} epoch "
                    f"{handoff['epoch']} in {handoff['duration_s']}s"
                    + (" (forced)" if handoff.get("forced") else "")
                    + (
                        f" (killed {handoff['killed']})"
                        if handoff.get("killed")
                        else ""
                    ),
                    flush=True,
                )
        victim = report["kill"]["site"] or report["kill"].get("coordinator")
        if victim:
            print(
                f"storm: killed {victim} at "
                f"{report['kill']['at']}; cluster restarts observed: "
                f"{report['kill']['cluster_restarts']}",
                flush=True,
            )
        for failure in report["failures"]:
            print(f"storm: FAIL {failure}", flush=True)
        if not report["failures"]:
            print("storm: all invariants hold", flush=True)


def run_storm(args) -> int:
    async def _main() -> int:
        return await StormClient(args).run()

    return asyncio.run(_main())
