"""Real-runtime federation benchmark series for ``python -m repro bench``.

Runs the live storm workload against 1, 2, and 4 coordinators (same
workload, same seed, same agents) and records each run — plus a
``federation_series`` summary with the throughput ratios — into
``BENCH_rt.json``.

Each scale launches its own supervised cluster (coordinators, agents,
and for the federated scales the SN-lease allocator) as real
subprocesses over TCP, so the series measures the whole stack:
routing, leases, session layer, WAL forcing.  Throughput scaling with
the coordinator count needs at least as many usable cores as
processes; on a single-core container the series still records honest
per-scale numbers, they just measure scheduler overhead instead of
parallelism (the summary includes ``cpus`` so readers can tell).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import shutil
import tempfile
import time
from typing import Dict, Optional, Sequence

#: Coordinator counts measured by the series.
FEDERATION_SCALES = (1, 2, 4)


def _storm_args(
    n_coordinators: int,
    data_root: str,
    bench_out: str,
    txns: int,
    inflight: int,
    seed: int,
) -> argparse.Namespace:
    """The exact argument surface ``python -m repro storm`` would build."""
    return argparse.Namespace(
        data_root=data_root,
        launch=True,
        txns=txns,
        seed=seed,
        remote_fraction=0.3,
        inflight=inflight,
        kill_agent=0,
        kill_coordinator=False,
        at="prepared",
        kill_after=2,
        txn_timeout=30.0,
        timeout=240.0,
        settle=2.0,
        label=f"federation_c{n_coordinators}",
        bench_out=bench_out,
        json_report=False,
        quit_cluster=False,
        federated=n_coordinators > 1,
        coordinators=n_coordinators,
        n_shards=8,
        lease_span=64,
        handoff=False,
        kill_during_handoff="none",
    )


def run_federation_series(
    out_dir: str = ".",
    txns: int = 200,
    inflight: int = 32,
    seed: int = 0,
    scales: Sequence[int] = FEDERATION_SCALES,
    keep_data: bool = False,
) -> Dict[str, dict]:
    """Run the storm at each coordinator scale; return the summary.

    Each run's full report lands in ``BENCH_rt.json`` under its
    ``federation_cN`` label (the storm client records it); this
    function adds the cross-scale ``federation_series`` entry.
    """
    from repro.rt.storm import StormClient

    bench_out = os.path.join(out_dir, "BENCH_rt.json")
    series: Dict[str, dict] = {}
    base_root = tempfile.mkdtemp(prefix="fed-bench-")
    try:
        for n in scales:
            data_root = os.path.join(base_root, f"c{n}")
            args = _storm_args(
                n, data_root, bench_out, txns=txns, inflight=inflight, seed=seed
            )
            client = StormClient(args)
            code = asyncio.run(client.run())
            report = client.report or {}
            series[f"c{n}"] = {
                "coordinators": n,
                "throughput_committed_per_s": report.get(
                    "throughput_committed_per_s", 0.0
                ),
                "latency_p50_s": report.get("latency_p50_s", 0.0),
                "latency_p99_s": report.get("latency_p99_s", 0.0),
                "committed": report.get("committed", 0),
                "aborted": report.get("aborted", 0),
                "ok": code == 0,
            }
    finally:
        if not keep_data:
            shutil.rmtree(base_root, ignore_errors=True)

    baseline = series.get("c1", {}).get("throughput_committed_per_s") or None
    summary = {
        "txns": txns,
        "inflight": inflight,
        "seed": seed,
        "cpus": os.cpu_count(),
        "scales": series,
        "speedup_vs_c1": {
            key: round(entry["throughput_committed_per_s"] / baseline, 3)
            for key, entry in series.items()
            if baseline
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    bench = {"schema": 1, "runs": {}}
    if os.path.exists(bench_out):
        with contextlib.suppress(Exception):
            with open(bench_out) as fh:
                bench = json.load(fh)
    bench["federation_series"] = summary
    with open(bench_out, "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")

    parts = ", ".join(
        f"c{n}: {series[f'c{n}']['throughput_committed_per_s']}/s"
        for n in scales
        if f"c{n}" in series
    )
    print(f"federation series ({txns} txns, {os.cpu_count()} cpus): {parts}")
    print(f"wrote federation_series: {bench_out}")
    return summary


def main(out_dir: str = ".", quick: bool = False) -> int:
    """Bench entry point: quick mode shrinks the workload, same shape."""
    run_federation_series(
        out_dir=out_dir,
        txns=60 if quick else 200,
        inflight=16 if quick else 32,
    )
    return 0
