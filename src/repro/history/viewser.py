"""View-serializability of the committed projection (the paper's
ultimate correctness criterion).

The paper's yardstick: ``C(H)`` must be *view equivalent* to some serial
history containing exactly the same transaction histories ``H(T_k)`` —
including the operations of unilaterally aborted incarnations, whose
writes a serial execution would also undo at their ``A^s_kj`` marker.

We decide this exactly, by replay:

1.  Each transaction's operations (reads, writes, local commits and
    local aborts, in recorded order) form its *block*.
2.  A candidate serial history is a permutation of the blocks.  Blocks
    are replayed against a writer-tag store with before-image undo, so
    an aborted incarnation's writes vanish at its abort marker exactly
    as the RR assumption makes them vanish physically.
3.  The candidate matches iff every read observes the *same source
    transaction* as it did physically (the recorder captured the
    physical reads-from via storage writer tags) and the final writer
    tags per item coincide.

A depth-first search over permutations prunes any prefix whose latest
block already misreads, which keeps the exact check fast for the paper-
scale scenarios.  Two shortcuts frame the search: an acyclic ``SG`` is
verified directly via its topological order (conflict ⇒ view
serializability), and histories with more than ``max_txns``
transactions whose ``SG`` is cyclic are reported as undecided rather
than searched (the benchmark harness then relies on the paper's
sufficient criterion: CI + DLU + SRS + acyclic CG).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.common.ids import SubtxnId, TxnId
from repro.history.committed import CommittedProjection
from repro.history.graphs import serialization_graph, topological_order
from repro.history.model import OpKind, Operation

#: A site-qualified item key in the replay store.
_ItemKey = Tuple[str, object]
#: A read source at transaction granularity (None = initial value, T0).
_Source = Optional[TxnId]


@dataclass
class ViewSerializabilityResult:
    """Outcome of the check.

    ``serializable`` is ``None`` when the exact search was not attempted
    (too many transactions with a cyclic SG) — callers then fall back to
    the paper's sufficient criterion.
    """

    serializable: Optional[bool]
    order: Optional[List[TxnId]] = None
    permutations_tried: int = 0
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return bool(self.serializable)


def _txn_of(source: Optional[SubtxnId]) -> _Source:
    return None if source is None else source.txn


def _replay_block(
    tags: Dict[_ItemKey, _Source],
    ops: Sequence[Operation],
    expected: Optional[List[_Source]],
) -> Optional[List[_Source]]:
    """Replay one transaction block against ``tags`` (mutated in place).

    Returns the list of sources its reads observed, or ``None`` as soon
    as a read deviates from ``expected`` (prefix pruning).  Writes are
    tagged per incarnation and undone at that incarnation's local abort,
    committed (made permanent) at its local commit.
    """
    undo: Dict[SubtxnId, List[Tuple[_ItemKey, _Source]]] = {}
    seen: List[_Source] = []
    for op in ops:
        if op.kind is OpKind.READ:
            key = (op.site, op.item)
            source = tags.get(key)
            seen.append(source)
            if expected is not None and expected[len(seen) - 1] != source:
                return None
        elif op.kind is OpKind.WRITE:
            key = (op.site, op.item)
            undo.setdefault(op.subtxn, []).append((key, tags.get(key)))
            tags[key] = op.txn
        elif op.kind is OpKind.LOCAL_ABORT:
            for key, previous in reversed(undo.pop(op.subtxn, [])):
                tags[key] = previous
        elif op.kind is OpKind.LOCAL_COMMIT:
            undo.pop(op.subtxn, None)
    return seen


def _recorded_sources(ops: Sequence[Operation]) -> List[_Source]:
    """The physically observed read sources of one block, in op order."""
    return [_txn_of(op.read_from) for op in ops if op.kind is OpKind.READ]


def _blocks(projection: CommittedProjection) -> Dict[TxnId, List[Operation]]:
    blocks: Dict[TxnId, List[Operation]] = {}
    relevant = (OpKind.READ, OpKind.WRITE, OpKind.LOCAL_COMMIT, OpKind.LOCAL_ABORT)
    for op in projection.ops:
        if op.kind in relevant:
            blocks.setdefault(op.txn, []).append(op)
    return blocks


def _final_tags(projection: CommittedProjection) -> Dict[_ItemKey, _Source]:
    """Final committed writer per item, from replaying ``C(H)`` as
    recorded (matches the physical end state)."""
    tags: Dict[_ItemKey, _Source] = {}
    _replay_block(tags, projection.ops, expected=None)
    return {key: source for key, source in tags.items()}


def check_view_serializable(
    projection: CommittedProjection,
    max_txns: int = 9,
) -> ViewSerializabilityResult:
    """Decide whether ``C(H)`` is view serializable (see module docs)."""
    blocks = _blocks(projection)
    txns = sorted(blocks)
    if not txns:
        return ViewSerializabilityResult(True, order=[], reason="empty projection")

    recorded = {txn: _recorded_sources(blocks[txn]) for txn in txns}
    target_tags = _final_tags(projection)

    # A read whose physical source is a transaction outside C(H) can
    # never be matched by any serial arrangement of C(H)'s blocks.
    included: Set[_Source] = {None}
    included.update(txns)
    for txn in txns:
        for source in recorded[txn]:
            if source not in included:
                return ViewSerializabilityResult(
                    False,
                    reason=(
                        f"{txn.label} read from {source.label}, which is "
                        "not in the committed projection (dirty read)"
                    ),
                )

    def try_order(order: Sequence[TxnId]) -> bool:
        tags: Dict[_ItemKey, _Source] = {}
        for txn in order:
            if _replay_block(tags, blocks[txn], recorded[txn]) is None:
                return False
        return _tags_match(tags, target_tags)

    # Fast path: acyclic SG -> conflict serializable -> view serializable
    # (still verified by replay for defence in depth).
    sg = serialization_graph(projection.data_ops())
    topo = topological_order(sg)
    if topo is not None:
        full = topo + [txn for txn in txns if txn not in set(topo)]
        if try_order(full):
            return ViewSerializabilityResult(
                True, order=full, permutations_tried=1, reason="SG acyclic"
            )

    tried = 0

    # Cyclic residue: only the transactions inside a strongly connected
    # component of SG can need reordering relative to each other; the
    # condensation's topological order pins everything else.  Searching
    # per-SCC permutations is polynomial when cycles stay small (the
    # common case under resubmission), and every witness it finds is
    # replay-verified, so a positive answer is sound.  It is *not*
    # complete — view equivalence may reorder across SG edges — so a
    # miss falls through to the exhaustive search below.
    scc_order, scc_tried = _search_scc_residue(
        sg, txns, blocks, recorded, target_tags, max_txns
    )
    tried += scc_tried
    if scc_order is not None:
        return ViewSerializabilityResult(
            True,
            order=scc_order,
            permutations_tried=tried,
            reason="SCC-guided search",
        )

    if len(txns) > max_txns:
        return ViewSerializabilityResult(
            None,
            reason=(
                f"{len(txns)} transactions with cyclic SG exceed the exact "
                f"search bound ({max_txns})"
            ),
        )

    # Exact search with prefix pruning.

    def search(
        remaining: List[TxnId], tags: Dict[_ItemKey, _Source], prefix: List[TxnId]
    ) -> Optional[List[TxnId]]:
        nonlocal tried
        if not remaining:
            if _tags_match(tags, target_tags):
                return list(prefix)
            return None
        for txn in remaining:
            tried += 1
            branch = dict(tags)
            if _replay_block(branch, blocks[txn], recorded[txn]) is None:
                continue
            prefix.append(txn)
            result = search(
                [other for other in remaining if other != txn], branch, prefix
            )
            if result is not None:
                return result
            prefix.pop()
        return None

    witness = search(txns, {}, [])
    if witness is not None:
        return ViewSerializabilityResult(
            True, order=witness, permutations_tried=tried, reason="exact search"
        )
    return ViewSerializabilityResult(
        False,
        permutations_tried=tried,
        reason="no serial order is view equivalent to C(H)",
    )


def _search_scc_residue(
    sg: "nx.DiGraph",
    txns: Sequence[TxnId],
    blocks: Dict[TxnId, List[Operation]],
    recorded: Dict[TxnId, List[_Source]],
    target_tags: Dict[_ItemKey, _Source],
    max_txns: int,
) -> Tuple[Optional[List[TxnId]], int]:
    """Search serial orders that permute only within SG's cyclic SCCs.

    The condensation's topological order fixes the relative order of
    distinct components; only members of the same strongly connected
    component are permuted (with the same prefix pruning as the full
    search).  Returns ``(witness_order_or_None, permutations_tried)``.
    Skipped entirely — ``(None, 0)`` — when there is no non-trivial SCC,
    when the largest SCC exceeds ``max_txns`` (the search would be as
    exponential as the full one), or when a single SCC spans every
    transaction (the full search would repeat the identical work).
    """
    components = list(nx.strongly_connected_components(sg))
    largest = max((len(c) for c in components), default=0)
    if largest <= 1 or largest > max_txns or largest >= len(txns):
        return None, 0
    condensation = nx.condensation(sg)
    groups = [
        sorted(condensation.nodes[cid]["members"])
        for cid in nx.topological_sort(condensation)
    ]
    in_sg = set(sg.nodes)
    groups.extend([txn] for txn in txns if txn not in in_sg)
    tried = 0

    def search_groups(
        index: int, tags: Dict[_ItemKey, _Source], prefix: List[TxnId]
    ) -> Optional[List[TxnId]]:
        if index == len(groups):
            return list(prefix) if _tags_match(tags, target_tags) else None
        return search_within(groups[index], index, tags, prefix)

    def search_within(
        remaining: List[TxnId],
        index: int,
        tags: Dict[_ItemKey, _Source],
        prefix: List[TxnId],
    ) -> Optional[List[TxnId]]:
        nonlocal tried
        if not remaining:
            return search_groups(index + 1, tags, prefix)
        for txn in remaining:
            tried += 1
            branch = dict(tags)
            if _replay_block(branch, blocks[txn], recorded[txn]) is None:
                continue
            prefix.append(txn)
            result = search_within(
                [other for other in remaining if other != txn],
                index,
                branch,
                prefix,
            )
            if result is not None:
                return result
            prefix.pop()
        return None

    return search_groups(0, {}, []), tried


def _tags_match(
    tags: Dict[_ItemKey, _Source], target: Dict[_ItemKey, _Source]
) -> bool:
    keys = set(tags) | set(target)
    return all(tags.get(key) == target.get(key) for key in keys)
