"""The paper's redefined committed projection ``C(H)`` (Sec. 3).

Standard theory (Bernstein et al.) projects a history onto the
operations of committed transactions.  The paper tightens and extends
this for the multidatabase setting:

* only *globally committed and complete* global transactions are
  included (global commit decided **and** every local commit performed);
* **all unilaterally aborted local subtransactions belonging to those
  transactions are included too** — that is the twist that lets the
  global-view-distortion anomaly show up inside ``C(H)`` at all;
* committed local transactions are included as usual.

Aborted global transactions, incomplete transactions and uncommitted
local transactions are projected away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.common.ids import TxnId
from repro.history.model import History, OpKind, Operation


@dataclass(frozen=True)
class CommittedProjection:
    """``C(H)`` plus the transaction sets it was built from."""

    ops: tuple
    #: Global transactions that are globally committed and complete.
    global_txns: frozenset
    #: Local transactions whose (single) incarnation committed.
    local_txns: frozenset

    @property
    def txns(self) -> Set[TxnId]:
        return set(self.global_txns) | set(self.local_txns)

    def data_ops(self) -> List[Operation]:
        return [op for op in self.ops if op.kind in (OpKind.READ, OpKind.WRITE)]

    def render(self) -> str:
        return " ".join(op.label for op in self.ops)


def committed_projection(history: History) -> CommittedProjection:
    """Build ``C(H)`` from a recorded history.

    Every operation of an included transaction is kept — including the
    R/W ops and the ``A^s_kj`` markers of unilaterally aborted
    incarnations of globally committed complete transactions, exactly as
    the paper prescribes.
    """
    complete = history.complete_global_txns()
    committed_locals = history.committed_local_txns()
    included = complete | committed_locals
    ops = tuple(op for op in history.ops if op.txn in included)
    return CommittedProjection(
        ops=ops,
        global_txns=frozenset(complete),
        local_txns=frozenset(committed_locals),
    )
