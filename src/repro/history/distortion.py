"""Detectors for the paper's two anomaly classes.

**Global view distortion** (Sec. 4): a resubmitted local subtransaction
``T^i_kj`` (j > 0) observes a different *view* — or even a different
*decomposition* — than the original ``T^i_k0``.  No serial history can
give one transaction two views, so any occurrence inside ``C(H)``
falsifies view serializability.  We detect it structurally, per global
transaction and site, by comparing incarnations:

* a **view split**: two incarnations read the same item from different
  source transactions;
* a **decomposition change**: the elementary R/W sequences (kinds and
  items) of two incarnations differ.

**Local view distortion** (Sec. 5): local transactions observe
non-serializable views because global transactions commit locally in
different orders at different sites.  Its structural signature is a
cycle in the commit-order graph ``CG(C(H))`` (the paper: "local view
distortion is possible in H only if CG(C(H)) is cyclic").  We report CG
cycles as local-distortion evidence; the exact view-serializability
checker remains the ground truth the benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.ids import DataItemId, SubtxnId, TxnId
from repro.history.committed import CommittedProjection
from repro.history.graphs import commit_order_graph, find_cycle
from repro.history.model import OpKind, Operation


@dataclass(frozen=True)
class ViewSplit:
    """One global-view-distortion witness: same item, two sources."""

    txn: TxnId
    site: str
    item: DataItemId
    first_incarnation: int
    first_source: Optional[TxnId]
    second_incarnation: int
    second_source: Optional[TxnId]

    def __str__(self) -> str:  # pragma: no cover - trivial
        first = self.first_source.label if self.first_source else "T0"
        second = self.second_source.label if self.second_source else "T0"
        return (
            f"{self.txn.label} at {self.site}: incarnation "
            f"{self.first_incarnation} read {self.item} from {first}, "
            f"incarnation {self.second_incarnation} read it from {second}"
        )


@dataclass(frozen=True)
class DecompositionChange:
    """Two incarnations of one subtransaction decomposed differently."""

    txn: TxnId
    site: str
    first_incarnation: int
    second_incarnation: int
    first_shape: Tuple[Tuple[str, str], ...]
    second_shape: Tuple[Tuple[str, str], ...]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.txn.label} at {self.site}: decomposition of incarnation "
            f"{self.second_incarnation} differs from incarnation "
            f"{self.first_incarnation}"
        )


@dataclass
class DistortionReport:
    """Everything the detectors found in one committed projection."""

    view_splits: List[ViewSplit] = field(default_factory=list)
    decomposition_changes: List[DecompositionChange] = field(default_factory=list)
    commit_graph_cycle: Optional[List[TxnId]] = None

    @property
    def has_global_distortion(self) -> bool:
        return bool(self.view_splits or self.decomposition_changes)

    @property
    def has_local_distortion_risk(self) -> bool:
        return self.commit_graph_cycle is not None

    @property
    def clean(self) -> bool:
        return not self.has_global_distortion and not self.has_local_distortion_risk

    def describe(self) -> str:
        lines: List[str] = []
        for split in self.view_splits:
            lines.append(f"view split: {split}")
        for change in self.decomposition_changes:
            lines.append(f"decomposition change: {change}")
        if self.commit_graph_cycle is not None:
            cycle = " -> ".join(txn.label for txn in self.commit_graph_cycle)
            lines.append(f"CG cycle: {cycle}")
        return "\n".join(lines) if lines else "no distortions"


def find_distortions(projection: CommittedProjection) -> DistortionReport:
    """Run all structural detectors over ``C(H)``."""
    report = DistortionReport()
    _find_global(projection, report)
    cg = commit_order_graph(projection.ops)
    report.commit_graph_cycle = find_cycle(cg)
    return report


def _find_global(projection: CommittedProjection, report: DistortionReport) -> None:
    #: (txn, site) -> incarnation -> ordered list of data ops.
    per_subtxn: Dict[Tuple[TxnId, str], Dict[int, List[Operation]]] = {}
    #: Incarnations that were themselves unilaterally aborted — a
    #: resubmission interrupted mid-replay legitimately executes only a
    #: prefix of the original decomposition (its effects are undone);
    #: that truncation is not a distortion.
    interrupted: set = set()
    for op in projection.ops:
        if op.kind is OpKind.LOCAL_ABORT and op.unilateral and op.subtxn:
            interrupted.add(op.subtxn)
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            continue
        if op.txn.is_local or op.subtxn is None:
            continue
        per_subtxn.setdefault((op.txn, op.site), {}).setdefault(
            op.subtxn.incarnation, []
        ).append(op)

    for (txn, site), incarnations in sorted(
        per_subtxn.items(), key=lambda entry: (entry[0][0], entry[0][1])
    ):
        if len(incarnations) < 2:
            continue
        ordered = sorted(incarnations)
        base = ordered[0]
        base_shape = _shape(incarnations[base])
        base_views = _views(incarnations[base])
        for later in ordered[1:]:
            later_shape = _shape(incarnations[later])
            later_sub = incarnations[later][0].subtxn
            is_interrupted_prefix = (
                later_sub in interrupted
                and later_shape == base_shape[: len(later_shape)]
            )
            if later_shape != base_shape and not is_interrupted_prefix:
                report.decomposition_changes.append(
                    DecompositionChange(
                        txn=txn,
                        site=site,
                        first_incarnation=base,
                        second_incarnation=later,
                        first_shape=base_shape,
                        second_shape=later_shape,
                    )
                )
            for item, source in _views(incarnations[later]).items():
                if item in base_views and base_views[item] != source:
                    report.view_splits.append(
                        ViewSplit(
                            txn=txn,
                            site=site,
                            item=item,
                            first_incarnation=base,
                            first_source=base_views[item],
                            second_incarnation=later,
                            second_source=source,
                        )
                    )


def _shape(ops: List[Operation]) -> Tuple[Tuple[str, str], ...]:
    """The elementary shape of one incarnation: (kind, item) pairs."""
    return tuple((op.kind.value, str(op.item)) for op in ops)


def _views(ops: List[Operation]) -> Dict[DataItemId, Optional[TxnId]]:
    """First read source per item for one incarnation.

    Only the first read of each item defines the incarnation's view of
    it (later reads may legitimately see the incarnation's own writes).
    Self-sources are normalized away: reading your own write is not a
    view.
    """
    views: Dict[DataItemId, Optional[TxnId]] = {}
    for op in ops:
        if op.kind is not OpKind.READ or op.item in views:
            continue
        source = None if op.read_from is None else op.read_from.txn
        if source == op.txn:
            continue
        views[op.item] = source
    return views
