"""The Correctness Invariant (CI) checker (paper Sec. 4.1).

CI is what the prepare certification enforces:

1. *no two global subtransactions with conflicting local
   subtransactions can be simultaneously in the prepared state at a
   site*, and
2. *no global subtransaction with a unilaterally aborted local
   subtransaction is moved to the prepared state*.

The checker works post-hoc over a recorded history:

* a transaction's **prepared window** at a site runs from its ``P^s_k``
  operation to its local commit or its requested (non-unilateral)
  rollback there — a *unilateral* abort does not end the window,
  because the 2PC Agent keeps simulating the prepared state and
  resubmits;
* part 1 is violated when two windows overlap at a site and the two
  transactions performed conflicting elementary operations there
  (any incarnations; at least one write on a shared item);
* part 2 is violated when a ``P^s_k`` is recorded while the
  transaction's newest incarnation at that site had already been
  unilaterally aborted (and no newer incarnation had produced any
  operation yet).

Under a rigorous substrate these conditions are exactly the paper's CI;
the E6 experiment asserts they hold for every 2CM run and are violated
by the naive baseline's H1 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.ids import DataItemId, TxnId
from repro.history.model import History, OpKind, Operation


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to be self-explanatory.

    Every checker (CI, atomic commitment, orphaned-PREPARED scans, the
    audit, quiescence) reports through this shape so harnesses — chaos,
    overload, the schedule explorer — can serialize, group and assert
    on violations without parsing prose.  ``str()`` still reads like
    the old bare-string reports, so log output stays human.

    * ``kind`` — stable machine-readable label (``"ci"``,
      ``"atomicity"``, ``"orphaned-prepared"``, ``"audit"``, …);
    * ``txns`` — labels of the offending global transactions;
    * ``sites`` — the sites involved;
    * ``context`` — checker-specific detail (per-site outcomes, the
      conflicting item, the choice-trace index that produced the run).
    """

    kind: str
    detail: str
    txns: Tuple[str, ...] = ()
    sites: Tuple[str, ...] = ()
    context: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        return self.detail

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "txns": list(self.txns),
            "sites": list(self.sites),
            "context": dict(self.context),
        }

    def with_context(self, **extra: Any) -> "Violation":
        merged = dict(self.context)
        merged.update(extra)
        return Violation(
            kind=self.kind,
            detail=self.detail,
            txns=self.txns,
            sites=self.sites,
            context=merged,
        )


@dataclass(frozen=True)
class CIViolation:
    """One witnessed CI violation."""

    part: int  # 1 or 2
    site: str
    txn: TxnId
    other: Optional[TxnId] = None
    item: Optional[DataItemId] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.part == 1:
            return (
                f"CI.1 at {self.site}: {self.txn.label} and "
                f"{self.other.label} simultaneously prepared with a "
                f"conflict on {self.item}"
            )
        return (
            f"CI.2 at {self.site}: {self.txn.label} moved to prepared "
            f"while unilaterally aborted"
        )

    def to_violation(self) -> Violation:
        txns = [self.txn.label]
        if self.other is not None:
            txns.append(self.other.label)
        return Violation(
            kind=f"ci.{self.part}",
            detail=str(self),
            txns=tuple(txns),
            sites=(self.site,),
            context={} if self.item is None else {"item": str(self.item)},
        )


def check_correctness_invariant(history: History) -> List[CIViolation]:
    """Return every CI violation witnessed by ``history``."""
    violations: List[CIViolation] = []
    ops = list(history.ops)
    for site in history.sites():
        violations.extend(_check_site(site, [op for op in ops if op.site == site]))
    return violations


def _check_site(site: str, ops: Sequence[Operation]) -> List[CIViolation]:
    violations: List[CIViolation] = []

    # -- access footprints: (txn) -> {item: has_write} -----------------
    footprint: Dict[TxnId, Dict[DataItemId, bool]] = {}
    for op in ops:
        if op.kind in (OpKind.READ, OpKind.WRITE) and not op.txn.is_local:
            items = footprint.setdefault(op.txn, {})
            items[op.item] = items.get(op.item, False) or (
                op.kind is OpKind.WRITE
            )

    # -- prepared windows ----------------------------------------------
    windows: Dict[TxnId, Tuple[float, float]] = {}
    open_at: Dict[TxnId, float] = {}
    latest_incarnation: Dict[TxnId, int] = {}
    aborted_incarnations: Dict[TxnId, Set[int]] = {}
    for op in ops:
        if op.kind in (OpKind.READ, OpKind.WRITE) and op.subtxn is not None:
            latest = latest_incarnation.get(op.txn, -1)
            latest_incarnation[op.txn] = max(latest, op.subtxn.incarnation)
        elif op.kind is OpKind.PREPARE:
            open_at[op.txn] = op.time
            current = latest_incarnation.get(op.txn, 0)
            if current in aborted_incarnations.get(op.txn, set()):
                violations.append(
                    CIViolation(part=2, site=site, txn=op.txn)
                )
        elif op.kind is OpKind.LOCAL_ABORT and op.subtxn is not None:
            if op.unilateral:
                aborted_incarnations.setdefault(op.txn, set()).add(
                    op.subtxn.incarnation
                )
            elif op.txn in open_at:
                windows[op.txn] = (open_at.pop(op.txn), op.time)
        elif op.kind is OpKind.LOCAL_COMMIT and op.txn in open_at:
            windows[op.txn] = (open_at.pop(op.txn), op.time)
    horizon = ops[-1].time if ops else 0.0
    for txn, start in open_at.items():
        windows[txn] = (start, horizon)

    # -- part 1: overlapping windows with conflicting footprints --------
    ordered = sorted(windows.items(), key=lambda entry: entry[1])
    for index, (txn_a, (start_a, end_a)) in enumerate(ordered):
        for txn_b, (start_b, end_b) in ordered[index + 1:]:
            if start_b > end_a:
                break  # sorted by start: no later window overlaps either
            item = _conflict_item(footprint.get(txn_a, {}), footprint.get(txn_b, {}))
            if item is not None:
                violations.append(
                    CIViolation(
                        part=1, site=site, txn=txn_a, other=txn_b, item=item
                    )
                )
    return violations


def _conflict_item(
    first: Dict[DataItemId, bool], second: Dict[DataItemId, bool]
) -> Optional[DataItemId]:
    shared = set(first) & set(second)
    for item in sorted(shared):
        if first[item] or second[item]:
            return item
    return None


# ----------------------------------------------------------------------
# Atomic commitment (the 2PC safety property the chaos nemesis hammers)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AtomicityViolation:
    """One global transaction with divergent per-site final outcomes."""

    txn: TxnId
    committed_sites: Tuple[str, ...]
    aborted_sites: Tuple[str, ...]
    #: The globally recorded decision, if any ("commit"/"abort"/None).
    decision: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.txn.label}: committed at {list(self.committed_sites)} "
            f"but rolled back at {list(self.aborted_sites)} "
            f"(global decision: {self.decision})"
        )

    def to_violation(self) -> Violation:
        outcomes = {site: "commit" for site in self.committed_sites}
        outcomes.update({site: "abort" for site in self.aborted_sites})
        return Violation(
            kind="atomicity",
            detail=f"atomic commitment: {self}",
            txns=(self.txn.label,),
            sites=tuple(sorted(outcomes)),
            context={"outcomes": outcomes, "decision": self.decision},
        )


def check_atomic_commitment(history: History) -> List[AtomicityViolation]:
    """All-or-nothing across sites, per global transaction.

    A *unilateral* local abort is not a final outcome — the 2PC Agent
    keeps simulating the prepared state and resubmits, so only the last
    local commit / requested rollback at each site counts.  A violation
    is a global transaction whose final per-site outcomes disagree
    (committed somewhere, rolled back elsewhere), or whose recorded
    global decision contradicts a site's final outcome.
    """
    finals: Dict[TxnId, Dict[str, str]] = {}
    decisions: Dict[TxnId, str] = {}
    for op in history.ops:
        if op.txn.is_local:
            continue
        if op.kind is OpKind.LOCAL_COMMIT:
            finals.setdefault(op.txn, {})[op.site] = "commit"
        elif op.kind is OpKind.LOCAL_ABORT and not op.unilateral:
            finals.setdefault(op.txn, {})[op.site] = "abort"
        elif op.kind is OpKind.GLOBAL_COMMIT:
            decisions[op.txn] = "commit"
        elif op.kind is OpKind.GLOBAL_ABORT:
            decisions[op.txn] = "abort"

    violations: List[AtomicityViolation] = []
    for txn in sorted(finals, key=lambda t: t.label):
        by_site = finals[txn]
        committed = tuple(sorted(s for s, o in by_site.items() if o == "commit"))
        aborted = tuple(sorted(s for s, o in by_site.items() if o == "abort"))
        decision = decisions.get(txn)
        mixed = bool(committed) and bool(aborted)
        contradicts = (decision == "commit" and aborted) or (
            decision == "abort" and committed
        )
        if mixed or contradicts:
            violations.append(
                AtomicityViolation(
                    txn=txn,
                    committed_sites=committed,
                    aborted_sites=aborted,
                    decision=decision,
                )
            )
    return violations


def check_history(history: History) -> List[Violation]:
    """Run both history-level checkers, structured-report style."""
    out: List[Violation] = []
    out.extend(v.to_violation() for v in check_correctness_invariant(history))
    out.extend(v.to_violation() for v in check_atomic_commitment(history))
    return out
