"""Rigorousness checking of local histories (the SRS assumption).

A local history is *rigorous* (Breitbart et al. 1991, cited by the
paper) when it is serializable, strict, and additionally no data object
is written until every transaction that previously read it commits or
aborts.  Operationally, over the elementary operations of one site:

    for every pair of conflicting operations ``o1 <_H o2`` belonging to
    different (sub)transactions, the termination (local commit or
    abort) of ``o1``'s (sub)transaction lies between ``o1`` and ``o2``.

That single condition covers all three conflict shapes (W–W, W–R
strictness and the extra R–W condition of rigorousness).  The certifier
relies on it through the paper's Conflict Detection Basis — two
subtransactions alive at the same time cannot conflict — so the checker
doubles as the guard validating the substrate in every experiment, and
as the witness that the non-rigorous ablation really does break the
assumption.

The check is incarnation-granular: the original and each resubmitted
local subtransaction count as independent transactions at the LTM, as
the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.ids import SubtxnId
from repro.history.model import History, OpKind, Operation


@dataclass(frozen=True)
class RigorViolation:
    """One witnessed violation: conflicting pair without termination."""

    first: Operation
    second: Operation

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.first.label} conflicts with later {self.second.label} but "
            f"{self.first.subtxn} had not terminated in between"
        )


def check_rigorous(
    ops: Sequence[Operation], site: Optional[str] = None
) -> List[RigorViolation]:
    """Return all rigorousness violations in ``ops`` (empty = rigorous).

    ``ops`` is usually a full recorded history; pass ``site`` to check a
    single local history ``H(i)``, or leave it ``None`` to check every
    site's projection at once.
    """
    violations: List[RigorViolation] = []
    #: Per item: operations seen so far by incarnations not yet terminated.
    open_ops: Dict[Tuple[str, object], List[Operation]] = {}
    terminated: Set[SubtxnId] = set()

    for op in ops:
        if site is not None and op.site != site:
            continue
        if op.kind in (OpKind.LOCAL_COMMIT, OpKind.LOCAL_ABORT):
            if op.subtxn is not None:
                terminated.add(op.subtxn)
            continue
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            continue
        key = (op.site, op.item)
        earlier_ops = open_ops.setdefault(key, [])
        for earlier in earlier_ops:
            if earlier.subtxn == op.subtxn or earlier.subtxn in terminated:
                continue
            if earlier.kind is OpKind.WRITE or op.kind is OpKind.WRITE:
                violations.append(RigorViolation(first=earlier, second=op))
        earlier_ops.append(op)
    return violations


def is_rigorous(history: History, site: Optional[str] = None) -> bool:
    """Convenience wrapper over :func:`check_rigorous`."""
    return not check_rigorous(history.ops, site=site)
