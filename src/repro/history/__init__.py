"""Histories, projections and correctness checkers (S13–S16).

This package is the measuring instrument of the reproduction: every
elementary operation observed at the elementary interface (EI), every
prepare/commit/abort at the 2PC and global interfaces, is recorded into
a single linear :class:`~repro.history.model.History` (the shuffle of
the per-transaction histories, Sec. 3 of the paper).  On top of it:

* :mod:`repro.history.committed` — the paper's redefined committed
  projection ``C(H)``, which *includes unilaterally aborted local
  subtransactions of globally committed complete transactions*;
* :mod:`repro.history.graphs` — serialization graph ``SG(H)`` and
  commit-order graph ``CG(H)``;
* :mod:`repro.history.viewser` — exact view-serializability decision
  for small transaction counts, plus the paper's sufficient criterion;
* :mod:`repro.history.rigor` — checks that local histories are rigorous
  (validating the SRS assumption the certifier relies on);
* :mod:`repro.history.distortion` — detectors for the paper's two
  anomaly classes, global and local view distortion.
"""

from repro.history.committed import committed_projection
from repro.history.distortion import DistortionReport, find_distortions
from repro.history.explain import Explanation, explain
from repro.history.graphs import commit_order_graph, serialization_graph
from repro.history.invariants import CIViolation, check_correctness_invariant
from repro.history.model import History, OpKind, Operation
from repro.history.rigor import RigorViolation, check_rigorous
from repro.history.trees import execution_tree, render_figure, render_tree
from repro.history.viewser import ViewSerializabilityResult, check_view_serializable

__all__ = [
    "CIViolation",
    "DistortionReport",
    "History",
    "OpKind",
    "Operation",
    "RigorViolation",
    "ViewSerializabilityResult",
    "Explanation",
    "check_correctness_invariant",
    "explain",
    "check_rigorous",
    "check_view_serializable",
    "commit_order_graph",
    "committed_projection",
    "execution_tree",
    "find_distortions",
    "render_figure",
    "render_tree",
    "serialization_graph",
]
