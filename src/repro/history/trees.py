"""Execution trees (paper Sec. 3, Fig. 2).

The paper models each transaction execution as a sequence of execution
trees; the final tree of a committed and complete transaction has

* the global decision (``C_k`` / ``A_k``) at the **root** (Coordinator),
* one **2PCA node** per participating site carrying the prepare
  operation ``P^s_k``,
* one **LTM leaf** per incarnation ``T^s_kj`` listing its elementary
  R/W operations and its local termination (``C^s_kj`` / ``A^s_kj``).

This module reconstructs that final tree from a recorded history and
renders it in the style of the paper's Fig. 2 — which is how benchmark
E1 regenerates the figure.  Local transactions yield a two-level tree
(no coordinator, no prepare).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import HistoryError
from repro.common.ids import SubtxnId, TxnId
from repro.history.model import History, OpKind, Operation


@dataclass
class TreeNode:
    """One node of an execution tree."""

    label: str
    children: List["TreeNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def size(self) -> int:
        return sum(1 for _node in self.walk())


def execution_tree(history: History, txn: TxnId) -> TreeNode:
    """Reconstruct the final execution tree of ``txn``."""
    ops = history.of_txn(txn)
    if not ops:
        raise HistoryError(f"no operations recorded for {txn}")

    if txn.is_local:
        return _local_tree(txn, ops)

    decision = ""
    for op in ops:
        if op.kind is OpKind.GLOBAL_COMMIT:
            decision = f"C_{txn.number}"
        elif op.kind is OpKind.GLOBAL_ABORT:
            decision = f"A_{txn.number}"
    root = TreeNode(label=f"{txn.label}" + (f"  [{decision}]" if decision else ""))

    #: site -> prepare op (if any)
    prepares: Dict[str, Operation] = {}
    #: site -> incarnation -> leaf ops / termination
    leaves: Dict[str, Dict[int, List[Operation]]] = {}
    site_order: List[str] = []
    for op in ops:
        if op.site is None:
            continue
        if op.site not in site_order:
            site_order.append(op.site)
        if op.kind is OpKind.PREPARE:
            prepares[op.site] = op
        elif op.subtxn is not None:
            leaves.setdefault(op.site, {}).setdefault(
                op.subtxn.incarnation, []
            ).append(op)

    for site in site_order:
        prepare = prepares.get(site)
        agent_label = f"2PCA {site}"
        if prepare is not None:
            agent_label += f"  [{prepare.label}]"
        agent = TreeNode(label=agent_label)
        for incarnation in sorted(leaves.get(site, {})):
            agent.children.append(
                _leaf_node(txn, site, incarnation, leaves[site][incarnation])
            )
        root.children.append(agent)
    return root


def _local_tree(txn: TxnId, ops: List[Operation]) -> TreeNode:
    site = next(op.site for op in ops if op.site is not None)
    root = TreeNode(label=txn.label)
    root.children.append(_leaf_node(txn, site, 0, ops))
    return root


def _leaf_node(
    txn: TxnId, site: str, incarnation: int, ops: List[Operation]
) -> TreeNode:
    data = " ".join(
        op.label for op in ops if op.kind in (OpKind.READ, OpKind.WRITE)
    )
    termination = ""
    for op in ops:
        if op.kind in (OpKind.LOCAL_COMMIT, OpKind.LOCAL_ABORT):
            termination = op.label
    if txn.is_local:
        name = SubtxnId(txn, site, 0).label
    else:
        name = SubtxnId(txn, site, incarnation).label
    label = name
    if data:
        label += f":  {data}"
    if termination:
        label += f"  [{termination}]"
    return TreeNode(label=label)


def render_tree(node: TreeNode) -> str:
    """ASCII rendering in the style of the paper's Fig. 2."""
    lines: List[str] = [node.label]

    def visit(current: TreeNode, prefix: str) -> None:
        for index, child in enumerate(current.children):
            last = index == len(current.children) - 1
            connector = "`-- " if last else "|-- "
            lines.append(prefix + connector + child.label)
            extension = "    " if last else "|   "
            visit(child, prefix + extension)

    visit(node, "")
    return "\n".join(lines)


def render_figure(history: History, txns: Optional[List[TxnId]] = None) -> str:
    """Render several transactions' trees — a regenerated Fig. 2."""
    targets = txns if txns is not None else history.txns()
    blocks = []
    for txn in targets:
        try:
            blocks.append(render_tree(execution_tree(history, txn)))
        except HistoryError:
            continue
    return "\n\n".join(blocks)
