"""Linear histories of indexed operations (paper Sec. 3).

The paper models a transaction execution as a sequence of execution
trees and flattens the trees into a *transaction history* ``H(T_k)``
containing the leaf-level ``R``/``W`` operations, the local commits and
aborts ``C^s_kj`` / ``A^s_kj``, the prepare operations ``P^s_k`` and the
global decision ``C_k`` / ``A_k``.  Concurrent executions are shuffles
of those histories.

We record the shuffle directly: every component appends its operations
to one :class:`History` as they *complete*, in simulated-time order
(ties broken by append sequence), which realizes the paper's total
order ``<_H``.  Projections recover ``H(i)`` (one site) and ``H(T_k)``
(one transaction).

Reads additionally capture *which incarnation's write they observed*
(the storage layer tags each row version with its writer), so the
reads-from relation used by the view-serializability checker reflects
physical reality rather than a positional approximation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.common.errors import HistoryError, RefusalReason
from repro.common.ids import DataItemId, SerialNumber, SubtxnId, TxnId


class OpKind(enum.Enum):
    """The operation vocabulary of the paper's histories."""

    READ = "R"
    WRITE = "W"
    #: ``P^s_k`` — the 2PCA recorded the decision to send READY.
    PREPARE = "P"
    #: ``C_k`` — the Coordinator durably decided global commit.
    GLOBAL_COMMIT = "C"
    #: ``A_k`` — the Coordinator durably decided global abort.
    GLOBAL_ABORT = "A"
    #: ``C^s_kj`` — the LTM committed one local (sub)transaction.
    LOCAL_COMMIT = "Cl"
    #: ``A^s_kj`` — the LTM aborted one local (sub)transaction.
    LOCAL_ABORT = "Al"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Operation:
    """One completed operation in the global history.

    ``subtxn`` identifies the incarnation (``T^s_kj``) for site-level
    operations and is ``None`` for the global decision ops, which occur
    "in the root node" of the execution tree.
    """

    kind: OpKind
    txn: TxnId
    seq: int
    time: float
    site: Optional[str] = None
    subtxn: Optional[SubtxnId] = None
    item: Optional[DataItemId] = None
    #: For READ: the incarnation whose surviving write produced the
    #: value read; ``None`` means the initial value (the paper's
    #: hypothetical initializing transaction ``T_0``).
    read_from: Optional[SubtxnId] = None
    #: For LOCAL_ABORT: whether the LTM aborted unilaterally.
    unilateral: bool = False
    reason: Optional[RefusalReason] = None
    sn: Optional[SerialNumber] = None
    value: Any = None

    @property
    def label(self) -> str:
        """Paper-style rendering, e.g. ``R10[X^a]`` or ``P^a_1``."""
        if self.kind in (OpKind.READ, OpKind.WRITE):
            assert self.subtxn is not None and self.item is not None
            sub = self.subtxn
            idx = (
                f"{sub.txn.number}"
                if sub.txn.is_local
                else f"{sub.txn.number}{sub.incarnation}"
            )
            return f"{self.kind}{idx}[{self.item.table}.{self.item.key!r}^{self.site}]"
        if self.kind is OpKind.PREPARE:
            return f"P^{self.site}_{self.txn.number}"
        if self.kind is OpKind.GLOBAL_COMMIT:
            return f"C_{self.txn.number}"
        if self.kind is OpKind.GLOBAL_ABORT:
            return f"A_{self.txn.number}"
        assert self.subtxn is not None
        marker = "C" if self.kind is OpKind.LOCAL_COMMIT else "A"
        sub = self.subtxn
        idx = (
            f"{sub.txn.number}"
            if sub.txn.is_local
            else f"{sub.txn.number}{sub.incarnation}"
        )
        return f"{marker}^{self.site}_{idx}"

    def conflicts_with(self, other: "Operation") -> bool:
        """R/W conflict on the same item at the same site, different txns."""
        if self.kind not in (OpKind.READ, OpKind.WRITE):
            return False
        if other.kind not in (OpKind.READ, OpKind.WRITE):
            return False
        if self.txn == other.txn:
            return False
        if self.site != other.site or self.item != other.item:
            return False
        return self.kind is OpKind.WRITE or other.kind is OpKind.WRITE

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


class History:
    """The recorded global history ``H`` plus recording helpers.

    Components record through the ``record_*`` methods; checkers consume
    :attr:`ops` (already in ``<_H`` order because recording happens at
    completion time through the deterministic kernel).
    """

    def __init__(self) -> None:
        self._ops: List[Operation] = []
        self._seq = itertools.count()
        self._observers: List[Callable[[Operation], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def subscribe(self, observer: Callable[[Operation], None]) -> None:
        """Invoke ``observer`` synchronously on every recorded op."""
        self._observers.append(observer)

    def _append(self, op: Operation) -> Operation:
        if self._ops and op.time < self._ops[-1].time:
            raise HistoryError(
                f"history time went backwards: {op} at {op.time} after "
                f"{self._ops[-1]} at {self._ops[-1].time}"
            )
        self._ops.append(op)
        for observer in self._observers:
            observer(op)
        return op

    def record_read(
        self,
        time: float,
        subtxn: SubtxnId,
        site: str,
        item: DataItemId,
        read_from: Optional[SubtxnId],
        value: Any = None,
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.READ,
                txn=subtxn.txn,
                seq=next(self._seq),
                time=time,
                site=site,
                subtxn=subtxn,
                item=item,
                read_from=read_from,
                value=value,
            )
        )

    def record_write(
        self,
        time: float,
        subtxn: SubtxnId,
        site: str,
        item: DataItemId,
        value: Any = None,
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.WRITE,
                txn=subtxn.txn,
                seq=next(self._seq),
                time=time,
                site=site,
                subtxn=subtxn,
                item=item,
                value=value,
            )
        )

    def record_prepare(
        self, time: float, txn: TxnId, site: str, sn: Optional[SerialNumber]
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.PREPARE,
                txn=txn,
                seq=next(self._seq),
                time=time,
                site=site,
                sn=sn,
            )
        )

    def record_global_commit(self, time: float, txn: TxnId) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.GLOBAL_COMMIT, txn=txn, seq=next(self._seq), time=time
            )
        )

    def record_global_abort(
        self, time: float, txn: TxnId, reason: Optional[RefusalReason] = None
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.GLOBAL_ABORT,
                txn=txn,
                seq=next(self._seq),
                time=time,
                reason=reason,
            )
        )

    def record_local_commit(
        self, time: float, subtxn: SubtxnId, site: str
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.LOCAL_COMMIT,
                txn=subtxn.txn,
                seq=next(self._seq),
                time=time,
                site=site,
                subtxn=subtxn,
            )
        )

    def record_local_abort(
        self,
        time: float,
        subtxn: SubtxnId,
        site: str,
        unilateral: bool = False,
        reason: Optional[RefusalReason] = None,
    ) -> Operation:
        return self._append(
            Operation(
                kind=OpKind.LOCAL_ABORT,
                txn=subtxn.txn,
                seq=next(self._seq),
                time=time,
                site=site,
                subtxn=subtxn,
                unilateral=unilateral,
                reason=reason,
            )
        )

    # ------------------------------------------------------------------
    # Projections and queries
    # ------------------------------------------------------------------

    @property
    def ops(self) -> Sequence[Operation]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def local(self, site: str) -> List[Operation]:
        """``H(i)``: the projection onto one site's operations."""
        return [op for op in self._ops if op.site == site]

    def of_txn(self, txn: TxnId) -> List[Operation]:
        """``H(T_k)``: the projection onto one transaction's operations."""
        return [op for op in self._ops if op.txn == txn]

    def sites(self) -> List[str]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for op in self._ops:
            if op.site is not None and op.site not in seen:
                seen.add(op.site)
                ordered.append(op.site)
        return ordered

    def txns(self) -> List[TxnId]:
        seen: Set[TxnId] = set()
        ordered: List[TxnId] = []
        for op in self._ops:
            if op.txn not in seen:
                seen.add(op.txn)
                ordered.append(op.txn)
        return ordered

    def globally_committed(self) -> Set[TxnId]:
        return {
            op.txn for op in self._ops if op.kind is OpKind.GLOBAL_COMMIT
        }

    def locally_committed_subtxns(self) -> Set[SubtxnId]:
        return {
            op.subtxn
            for op in self._ops
            if op.kind is OpKind.LOCAL_COMMIT and op.subtxn is not None
        }

    def committed_local_txns(self) -> Set[TxnId]:
        """Local transactions (``L_o``) whose single incarnation committed."""
        return {
            op.txn
            for op in self._ops
            if op.kind is OpKind.LOCAL_COMMIT and op.txn.is_local
        }

    def complete_global_txns(self) -> Set[TxnId]:
        """Globally committed *and complete* transactions (paper Sec. 3).

        Complete means the local commit was performed at every site the
        transaction touched.
        """
        committed = self.globally_committed()
        touched: Dict[TxnId, Set[str]] = {}
        locally_committed: Dict[TxnId, Set[str]] = {}
        for op in self._ops:
            if op.txn not in committed or op.site is None:
                continue
            touched.setdefault(op.txn, set()).add(op.site)
            if op.kind is OpKind.LOCAL_COMMIT:
                locally_committed.setdefault(op.txn, set()).add(op.site)
        return {
            txn
            for txn in committed
            if touched.get(txn, set()) == locally_committed.get(txn, set())
            and touched.get(txn)
        }

    def data_ops(self) -> List[Operation]:
        return [op for op in self._ops if op.kind in (OpKind.READ, OpKind.WRITE)]

    def render(self, ops: Optional[Iterable[Operation]] = None) -> str:
        """Human-readable, paper-style rendering of (part of) the history."""
        source = self._ops if ops is None else list(ops)
        return " ".join(op.label for op in source)

    def restricted_to(self, txns: Set[TxnId]) -> List[Operation]:
        return [op for op in self._ops if op.txn in txns]
