"""Human-readable explanations of audit findings.

``audit`` tells you *that* a history is broken; this module explains
*why*, in the vocabulary of the paper:

* per-transaction **reads-from tables** (who supplied each first read);
* the **serialization constraints** a serial witness would have to
  satisfy, derived from reads-from and final writes;
* the **ordering cycle** those constraints form when no witness exists;
* rendered **view splits / decomposition changes** for global view
  distortion;
* the **commit-order evidence** (which sites ordered which commits).

The CLI surfaces this via ``python -m repro scenario H2 --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.common.ids import DataItemId, TxnId
from repro.history.committed import CommittedProjection
from repro.history.graphs import commit_order_graph, find_cycle
from repro.history.model import OpKind, Operation


@dataclass(frozen=True)
class ReadsFromEntry:
    """One first-read fact: ``reader`` read ``item`` from ``source``."""

    reader: TxnId
    site: str
    item: DataItemId
    source: Optional[TxnId]  # None = initial value (T0)
    incarnation: Optional[int]

    def render(self) -> str:
        source = self.source.label if self.source else "T0"
        inc = "" if self.incarnation is None else f" (incarnation {self.incarnation})"
        return (
            f"{self.reader.label}{inc} read {self.item.label}@{self.site} "
            f"from {source}"
        )


def reads_from_table(projection: CommittedProjection) -> List[ReadsFromEntry]:
    """First-read sources per (transaction, incarnation, site, item)."""
    entries: List[ReadsFromEntry] = []
    seen: Set[Tuple] = set()
    for op in projection.ops:
        if op.kind is not OpKind.READ or op.subtxn is None:
            continue
        incarnation = None if op.txn.is_local else op.subtxn.incarnation
        key = (op.txn, incarnation, op.site, op.item)
        if key in seen:
            continue
        seen.add(key)
        source = None if op.read_from is None else op.read_from.txn
        if source == op.txn:
            continue  # own write: not a cross-transaction fact
        entries.append(
            ReadsFromEntry(
                reader=op.txn,
                site=op.site,
                item=op.item,
                source=source,
                incarnation=incarnation,
            )
        )
    return entries


@dataclass(frozen=True)
class OrderingConstraint:
    """``before`` must precede ``after`` in any serial witness."""

    before: TxnId
    after: TxnId
    why: str

    def render(self) -> str:
        return f"{self.before.label} < {self.after.label}  ({self.why})"


def serialization_constraints(
    projection: CommittedProjection,
) -> List[OrderingConstraint]:
    """Ordering facts any view-equivalent serial history must satisfy.

    Derived conservatively from the recorded reads-from relation:

    * a read from ``S`` puts ``S`` before the reader;
    * a read of the *initial* value of an item puts the reader before
      every (other) committed writer of that item.
    """
    constraints: List[OrderingConstraint] = []
    committed_writers: Dict[Tuple[str, DataItemId], Set[TxnId]] = {}
    committed_subtxns = projection.ops and {
        op.subtxn
        for op in projection.ops
        if op.kind is OpKind.LOCAL_COMMIT and op.subtxn is not None
    } or set()
    for op in projection.ops:
        if op.kind is OpKind.WRITE and op.subtxn in committed_subtxns:
            committed_writers.setdefault((op.site, op.item), set()).add(op.txn)

    seen: Set[Tuple[TxnId, TxnId, str]] = set()

    def add(before: TxnId, after: TxnId, why: str) -> None:
        if before == after:
            return
        key = (before, after, why.split(":")[0])
        if key in seen:
            return
        seen.add(key)
        constraints.append(OrderingConstraint(before, after, why))

    for entry in reads_from_table(projection):
        if entry.source is not None:
            add(
                entry.source,
                entry.reader,
                f"reads-from: {entry.item.label}@{entry.site}",
            )
            # Reading S's version also means every other committed
            # writer of the item is not between S and the reader; the
            # useful conservative fact: the reader precedes none of
            # them necessarily — skip (kept simple and sound).
        else:
            for writer in committed_writers.get((entry.site, entry.item), set()):
                add(
                    entry.reader,
                    writer,
                    f"read initial {entry.item.label}@{entry.site} "
                    f"before {writer.label}'s write",
                )
    return constraints


@dataclass
class Explanation:
    """Everything :func:`explain` found, with a text rendering."""

    reads_from: List[ReadsFromEntry] = field(default_factory=list)
    constraints: List[OrderingConstraint] = field(default_factory=list)
    constraint_cycle: Optional[List[TxnId]] = None
    commit_order_cycle: Optional[List[TxnId]] = None
    view_splits: List[str] = field(default_factory=list)
    decomposition_changes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines: List[str] = []
        if self.view_splits or self.decomposition_changes:
            lines.append("GLOBAL VIEW DISTORTION")
            for text in self.view_splits:
                lines.append(f"  view split: {text}")
            for text in self.decomposition_changes:
                lines.append(f"  decomposition change: {text}")
            lines.append("")
        lines.append("reads-from facts:")
        for entry in self.reads_from:
            lines.append(f"  {entry.render()}")
        lines.append("")
        lines.append("serialization constraints:")
        for constraint in self.constraints:
            lines.append(f"  {constraint.render()}")
        if self.constraint_cycle:
            chain = " < ".join(t.label for t in self.constraint_cycle)
            lines.append("")
            lines.append(f"=> impossible: {chain}  (cyclic requirement)")
        if self.commit_order_cycle:
            chain = " -> ".join(t.label for t in self.commit_order_cycle)
            lines.append("")
            lines.append(f"commit-order graph cycle: {chain}")
        return "\n".join(lines)


def explain(projection: CommittedProjection) -> Explanation:
    """Build the full explanation for ``C(H)``."""
    from repro.history.distortion import find_distortions

    explanation = Explanation()
    explanation.reads_from = reads_from_table(projection)
    explanation.constraints = serialization_constraints(projection)

    graph = nx.DiGraph()
    for constraint in explanation.constraints:
        graph.add_edge(constraint.before, constraint.after)
    explanation.constraint_cycle = find_cycle(graph)

    report = find_distortions(projection)
    explanation.view_splits = [str(s) for s in report.view_splits]
    explanation.decomposition_changes = [
        str(c) for c in report.decomposition_changes
    ]
    explanation.commit_order_cycle = find_cycle(
        commit_order_graph(projection.ops)
    )
    return explanation
