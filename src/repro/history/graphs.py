"""Serialization graph ``SG(H)`` and commit-order graph ``CG(H)``.

``SG(H)`` is the classic conflict graph over transactions (edges follow
the order of conflicting elementary operations), built over whatever
operation sequence the caller supplies — usually ``C(H)``.  The paper
points out that under resubmission ``SG(H)`` *may be cyclic while H is
still view serializable*, which is why view serializability (not
conflict serializability) is the ultimate criterion; the exact checker
lives in :mod:`repro.history.viewser`.

``CG(H)`` (Sec. 5.1) has an arc ``T_k → T_i`` iff some local commit of
``T_k`` precedes some local commit of ``T_i`` at the same site.  The
paper's key lemma: if ``CG(C(H))`` is acyclic (and CI, DLU, SRS hold),
the topological order of ``CG`` is a global view-serialization order —
hence the commit certification works by keeping this graph acyclic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.common.ids import TxnId
from repro.history.model import OpKind, Operation


def serialization_graph(ops: Sequence[Operation]) -> "nx.DiGraph":
    """Build ``SG`` over the given operation sequence.

    Nodes are transactions with at least one R/W operation; there is an
    edge ``T_a → T_b`` when some operation of ``T_a`` precedes and
    conflicts with some operation of ``T_b`` (same site, same item, at
    least one write, different transactions).  All incarnations of a
    global transaction contribute to its single node, as the paper's
    global serializability notion requires.
    """
    graph = nx.DiGraph()
    per_item: Dict[Tuple[str, object], List[Operation]] = {}
    for op in ops:
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            continue
        graph.add_node(op.txn)
        per_item.setdefault((op.site, op.item), []).append(op)
    for sequence in per_item.values():
        for i, earlier in enumerate(sequence):
            for later in sequence[i + 1:]:
                if earlier.txn == later.txn:
                    continue
                if earlier.kind is OpKind.WRITE or later.kind is OpKind.WRITE:
                    graph.add_edge(earlier.txn, later.txn)
    return graph


def commit_order_graph(ops: Sequence[Operation]) -> "nx.DiGraph":
    """Build ``CG`` over the given operation sequence (paper Sec. 5.1).

    Nodes: transactions with at least one local commit.  Arc
    ``T_k → T_i`` iff ``C^x_kj <_H C^x_ig`` for some site ``x``.
    """
    graph = nx.DiGraph()
    commits_per_site: Dict[str, List[TxnId]] = {}
    for op in ops:
        if op.kind is not OpKind.LOCAL_COMMIT:
            continue
        graph.add_node(op.txn)
        commits_per_site.setdefault(op.site, []).append(op.txn)
    for sequence in commits_per_site.values():
        for i, earlier in enumerate(sequence):
            for later in sequence[i + 1:]:
                if earlier != later:
                    graph.add_edge(earlier, later)
    return graph


def find_cycle(graph: "nx.DiGraph") -> Optional[List[TxnId]]:
    """One cycle as a node list (first node repeated last), or ``None``."""
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    nodes = [edge[0] for edge in edges]
    nodes.append(edges[-1][1])
    return nodes


def is_acyclic(graph: "nx.DiGraph") -> bool:
    return nx.is_directed_acyclic_graph(graph)


def topological_order(graph: "nx.DiGraph") -> Optional[List[TxnId]]:
    """A deterministic topological order, or ``None`` if cyclic."""
    if not is_acyclic(graph):
        return None
    return list(nx.lexicographical_topological_sort(graph))


def to_dot(graph: "nx.DiGraph", name: str = "G") -> str:
    """Graphviz DOT rendering of an SG/CG (nodes labelled T1, L4, ...).

    Handy for dropping a recorded anomaly into any DOT viewer::

        print(to_dot(commit_order_graph(projection.ops), "CG"))
    """
    lines = [f"digraph {name} {{"]
    for node in sorted(graph.nodes):
        shape = "box" if getattr(node, "is_local", False) else "ellipse"
        lines.append(f'  "{node.label}" [shape={shape}];')
    for src, dst in sorted(graph.edges):
        lines.append(f'  "{src.label}" -> "{dst.label}";')
    lines.append("}")
    return "\n".join(lines)
