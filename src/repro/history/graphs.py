"""Serialization graph ``SG(H)`` and commit-order graph ``CG(H)``.

``SG(H)`` is the classic conflict graph over transactions (edges follow
the order of conflicting elementary operations), built over whatever
operation sequence the caller supplies — usually ``C(H)``.  The paper
points out that under resubmission ``SG(H)`` *may be cyclic while H is
still view serializable*, which is why view serializability (not
conflict serializability) is the ultimate criterion; the exact checker
lives in :mod:`repro.history.viewser`.

``CG(H)`` (Sec. 5.1) has an arc ``T_k → T_i`` iff some local commit of
``T_k`` precedes some local commit of ``T_i`` at the same site.  The
paper's key lemma: if ``CG(C(H))`` is acyclic (and CI, DLU, SRS hold),
the topological order of ``CG`` is a global view-serialization order —
hence the commit certification works by keeping this graph acyclic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.common.ids import TxnId
from repro.history.model import OpKind, Operation


def serialization_graph(ops: Sequence[Operation]) -> "nx.DiGraph":
    """Build ``SG`` over the given operation sequence.

    Nodes are transactions with at least one R/W operation; there is an
    edge ``T_a → T_b`` when some operation of ``T_a`` precedes and
    conflicts with some operation of ``T_b`` (same site, same item, at
    least one write, different transactions).  All incarnations of a
    global transaction contribute to its single node, as the paper's
    global serializability notion requires.
    """
    graph = nx.DiGraph()
    add_node = graph.add_node
    # Single pass with per-item writer/reader partitioning: a later
    # write conflicts with every earlier transaction that touched the
    # item; a later read conflicts only with earlier *writers* — so
    # read-read pairs are never even enumerated, and repeated conflicts
    # collapse into per-transaction sets instead of O(ops²) pairs.
    # Each distinct edge is handed to networkx exactly once (``seen``
    # guard); the per-source adjacency order — which decides e.g. which
    # cycle ``find_cycle`` reports — is fixed by the position of the
    # *later* op, so it does not depend on set iteration order.
    read, write = OpKind.READ, OpKind.WRITE
    writers: Dict[Tuple[str, object], Set[TxnId]] = {}
    touched: Dict[Tuple[str, object], Set[TxnId]] = {}
    seen: Set[Tuple[TxnId, TxnId]] = set()
    add_edge = graph.add_edge
    for op in ops:
        kind = op.kind
        if kind is not read and kind is not write:
            continue
        txn = op.txn
        add_node(txn)
        key = (op.site, op.item)
        earlier = touched.get(key)
        if kind is write:
            if earlier:
                for other in earlier:
                    if other != txn and (other, txn) not in seen:
                        seen.add((other, txn))
                        add_edge(other, txn)
                earlier.add(txn)
            else:
                touched[key] = {txn}
            item_writers = writers.get(key)
            if item_writers is None:
                writers[key] = {txn}
            else:
                item_writers.add(txn)
        else:
            item_writers = writers.get(key)
            if item_writers:
                for other in item_writers:
                    if other != txn and (other, txn) not in seen:
                        seen.add((other, txn))
                        add_edge(other, txn)
            if earlier is None:
                touched[key] = {txn}
            else:
                earlier.add(txn)
    return graph


def commit_order_graph(ops: Sequence[Operation]) -> "nx.DiGraph":
    """Build ``CG`` over the given operation sequence (paper Sec. 5.1).

    Nodes: transactions with at least one local commit.  Arc
    ``T_k → T_i`` iff ``C^x_kj <_H C^x_ig`` for some site ``x``.
    """
    graph = nx.DiGraph()
    committed_per_site: Dict[str, Set[TxnId]] = {}
    seen: Set[Tuple[TxnId, TxnId]] = set()
    for op in ops:
        if op.kind is not OpKind.LOCAL_COMMIT:
            continue
        txn = op.txn
        graph.add_node(txn)
        earlier = committed_per_site.get(op.site)
        if earlier is None:
            committed_per_site[op.site] = {txn}
            continue
        for other in earlier:
            if other != txn and (other, txn) not in seen:
                seen.add((other, txn))
                graph.add_edge(other, txn)
        earlier.add(txn)
    return graph


def find_cycle(graph: "nx.DiGraph") -> Optional[List[TxnId]]:
    """One cycle as a node list (first node repeated last), or ``None``."""
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    nodes = [edge[0] for edge in edges]
    nodes.append(edges[-1][1])
    return nodes


def is_acyclic(graph: "nx.DiGraph") -> bool:
    return nx.is_directed_acyclic_graph(graph)


def topological_order(graph: "nx.DiGraph") -> Optional[List[TxnId]]:
    """A deterministic topological order, or ``None`` if cyclic."""
    if not is_acyclic(graph):
        return None
    return list(nx.lexicographical_topological_sort(graph))


def to_dot(graph: "nx.DiGraph", name: str = "G") -> str:
    """Graphviz DOT rendering of an SG/CG (nodes labelled T1, L4, ...).

    Handy for dropping a recorded anomaly into any DOT viewer::

        print(to_dot(commit_order_graph(projection.ops), "CG"))
    """
    lines = [f"digraph {name} {{"]
    for node in sorted(graph.nodes):
        shape = "box" if getattr(node, "is_local", False) else "ellipse"
        lines.append(f'  "{node.label}" [shape={shape}];')
    for src, dst in sorted(graph.edges):
        lines.append(f'  "{src.label}" -> "{dst.label}";')
    lines.append("}")
    return "\n".join(lines)
