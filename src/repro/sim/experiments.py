"""The experiment library behind ``benchmarks/`` and EXPERIMENTS.md.

Each ``exp_*`` function reproduces one experiment id from DESIGN.md
(E1–E13) and returns printable rows; the benchmark modules time them
and render the tables.  Everything is seeded and deterministic.

The paper has no quantitative evaluation (performance is "for further
study"), so E7–E13 *are* that deferred study, executed over the
reproduced system; E1–E6 regenerate the paper's concrete artifacts
(Fig. 2, histories H1/H2/H3/Hx, the CI invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.invariants import check_correctness_invariant
from repro.ldbs.dlu import DLUPolicy
from repro.ldbs.ltm import LTMConfig
from repro.core.agent import AgentConfig
from repro.sim.driver import SimulationResult, run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import CorrectnessAudit, audit, collect_metrics
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx


def guarantee_holds(report: CorrectnessAudit) -> bool:
    """The paper's guarantee, evaluated defensively.

    ``True`` when C(H) is view serializable.  When the exact decision
    was out of reach (too many transactions with a cyclic SG) we fall
    back to the paper's sufficient criterion: rigorous substrate, no
    global view distortion, acyclic commit-order graph.
    """
    verdict = report.view_serializability.serializable
    if verdict is not None:
        return (
            bool(verdict)
            and report.rigor_violations == 0
            and not report.distortions.has_global_distortion
        )
    return (
        report.rigor_violations == 0
        and not report.distortions.has_global_distortion
        and report.distortions.commit_graph_cycle is None
    )


# ----------------------------------------------------------------------
# E1–E5: the paper's worked histories, across methods
# ----------------------------------------------------------------------

SCENARIOS = {
    "H1": (run_h1, ("naive", "2cm")),
    "H2": (run_h2, ("naive", "2cm")),
    "H3": (run_h3, ("naive", "2cm-nocommitcert", "2cm-prepare-order", "2cm")),
    "Hx": (run_hx, ("2cm-noext", "2cm")),
}


def exp_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
) -> List[List[object]]:
    """One row per (scenario, method): did the anomaly materialize?"""
    rows: List[List[object]] = []
    for name in scenarios or sorted(SCENARIOS):
        runner, methods = SCENARIOS[name]
        for method in methods:
            result = runner(method)
            report = result.audit
            committed = sum(
                1 for out in result.global_outcomes.values() if out.committed
            )
            aborted = len(result.global_outcomes) - committed
            rows.append(
                [
                    name,
                    method,
                    committed,
                    aborted,
                    report.distortions.has_global_distortion,
                    report.distortions.commit_graph_cycle is not None,
                    report.view_serializability.serializable,
                ]
            )
    return rows


# ----------------------------------------------------------------------
# E6: the Correctness Invariant under randomized runs
# ----------------------------------------------------------------------


def exp_ci_invariant(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    methods: Sequence[str] = ("2cm", "naive"),
    failure_probability: float = 0.4,
) -> List[List[object]]:
    """CI violations per method over randomized failing workloads."""
    rows: List[List[object]] = []
    for method in methods:
        total_violations = 0
        guarantee_failures = 0
        for seed in seeds:
            system = _system(method, seed=seed, sites=("a", "b"))
            RandomFailureInjector(system, probability=failure_probability, seed=seed)
            schedule = _workload(seed=seed, n_global=8, n_local=2)
            run_schedule(system, schedule)
            total_violations += len(check_correctness_invariant(system.history))
            if not guarantee_holds(audit(system)):
                guarantee_failures += 1
        rows.append([method, len(seeds), total_violations, guarantee_failures])
    return rows


# ----------------------------------------------------------------------
# E7: failure-free restrictiveness (Sec. 6 comparison)
# ----------------------------------------------------------------------


def exp_restrictiveness(
    seeds: Sequence[int] = (1, 2, 3),
    methods: Sequence[str] = ("2cm", "cgm", "ticket", "naive"),
    n_global: int = 30,
) -> List[List[object]]:
    """Failure-free workloads: who aborts / delays what?

    The paper's claim: 2CM aborts nothing without failures; CGM's
    site-granularity commit graph delays (and can time out) multi-site
    transactions; the ticket scheme aborts transactions "in vain".
    """
    rows: List[List[object]] = []
    for method in methods:
        cert_aborts = 0
        lock_aborts = 0
        committed = 0
        delays = 0
        latencies: List[float] = []
        ok_runs = 0
        for seed in seeds:
            system = _system(method, seed=seed, sites=("a", "b", "c"))
            schedule = _workload(
                seed=seed,
                n_global=n_global,
                sites=("a", "b", "c"),
                sites_max=2,
                n_tables=6,
            )
            result = run_schedule(system, schedule)
            metrics = collect_metrics(system, latencies=result.commit_latencies)
            committed += metrics.global_committed
            lock_aborts += metrics.aborts_by_reason.get("lock-timeout", 0)
            cert_aborts += sum(
                count
                for reason, count in metrics.aborts_by_reason.items()
                if reason != "lock-timeout"
            )
            delays += metrics.commit_delays
            if system.scheduler is not None:
                delays += system.scheduler.admission_waits
            latencies.extend(metrics.latencies)
            if guarantee_holds(audit(system, max_txns=7)):
                ok_runs += 1
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        rows.append(
            [
                method,
                committed,
                cert_aborts,
                lock_aborts,
                delays,
                mean_latency,
                ok_runs == len(seeds),
            ]
        )
    return rows


# ----------------------------------------------------------------------
# E8: sensitivity to unilateral-abort probability
# ----------------------------------------------------------------------


def exp_failure_sweep(
    probabilities: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
    methods: Sequence[str] = ("2cm", "naive"),
    seeds: Sequence[int] = (1, 2),
    n_global: int = 12,
) -> List[List[object]]:
    """Abort rate, resubmissions and the guarantee, per failure level."""
    rows: List[List[object]] = []
    for method in methods:
        for probability in probabilities:
            committed = aborted = resubmissions = injected = 0
            anomalies = 0
            for seed in seeds:
                system = _system(method, seed=seed, sites=("a", "b"))
                injector = RandomFailureInjector(
                    system, probability=probability, seed=seed
                )
                schedule = _workload(seed=seed, n_global=n_global, n_local=2)
                run_schedule(system, schedule)
                metrics = collect_metrics(system)
                committed += metrics.global_committed
                aborted += metrics.global_aborted
                resubmissions += metrics.resubmissions
                injected += injector.injected
                if not guarantee_holds(audit(system)):
                    anomalies += 1
            total = committed + aborted
            rows.append(
                [
                    method,
                    probability,
                    injected,
                    committed,
                    aborted,
                    aborted / total if total else 0.0,
                    resubmissions,
                    anomalies,
                ]
            )
    return rows


# ----------------------------------------------------------------------
# E9: clock drift causes unnecessary aborts only
# ----------------------------------------------------------------------


def exp_drift_sweep(
    offsets: Sequence[float] = (0.0, 20.0, 80.0, 320.0),
    seeds: Sequence[int] = (1, 2, 3),
    n_global: int = 16,
) -> List[List[object]]:
    """One coordinator's clock runs ahead by ``offset``.

    Expectation (paper Sec. 5.2): correctness never suffers; the
    out-of-order PREPARE refusals (aborts "in vain") grow with drift.
    """
    rows: List[List[object]] = []
    for offset in offsets:
        refusals = 0
        committed = 0
        aborted = 0
        ok_runs = 0
        for seed in seeds:
            system = _system(
                "2cm",
                seed=seed,
                sites=("a", "b"),
                clock_offsets={"c2": offset},
            )
            schedule = _workload(seed=seed, n_global=n_global)
            run_schedule(system, schedule)
            metrics = collect_metrics(system)
            refusals += metrics.refusals_by_reason.get("prepare-out-of-order", 0)
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            if guarantee_holds(audit(system)):
                ok_runs += 1
        rows.append(
            [offset, committed, aborted, refusals, ok_runs == len(seeds)]
        )
    return rows


# ----------------------------------------------------------------------
# E10: alive-check interval sensitivity
# ----------------------------------------------------------------------


def exp_alive_interval_sweep(
    intervals: Sequence[float] = (10.0, 40.0, 160.0, 640.0),
    seeds: Sequence[int] = (1, 2),
    failure_probability: float = 0.5,
    n_global: int = 12,
) -> List[List[object]]:
    """How fast failures are discovered vs how much checking costs."""
    rows: List[List[object]] = []
    for interval in intervals:
        checks = 0
        refusals = 0
        committed = 0
        latencies: List[float] = []
        ok_runs = 0
        for seed in seeds:
            system = _system(
                "2cm",
                seed=seed,
                sites=("a", "b"),
                agent=AgentConfig(alive_check_interval=interval),
                # Slow COMMIT delivery: frequent alive checks can repair
                # a failed subtransaction *before* its COMMIT arrives,
                # hiding the resubmission latency; rare checks leave the
                # repair on the commit path.
                latency_stretch=60.0,
            )
            RandomFailureInjector(
                system, probability=failure_probability, seed=seed, max_delay=15.0
            )
            schedule = _workload(seed=seed, n_global=n_global)
            result = run_schedule(system, schedule)
            metrics = collect_metrics(system, latencies=result.commit_latencies)
            checks += metrics.alive_checks
            refusals += metrics.refusals_by_reason.get("alive-intersection", 0)
            committed += metrics.global_committed
            latencies.extend(metrics.latencies)
            if guarantee_holds(audit(system)):
                ok_runs += 1
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        rows.append(
            [interval, checks, refusals, committed, mean_latency, ok_runs == len(seeds)]
        )
    return rows


# ----------------------------------------------------------------------
# E11: the DLU assumption, ablated
# ----------------------------------------------------------------------


def exp_dlu_ablation(
    policies: Sequence[DLUPolicy] = (
        DLUPolicy.ABORT,
        DLUPolicy.BLOCK,
        DLUPolicy.VIOLATE,
    ),
    seeds: Sequence[int] = (1, 2, 3, 4),
) -> List[List[object]]:
    """Local updates of bound data: enforced vs allowed.

    With enforcement off (VIOLATE) and failures on, local writes land
    inside the bound data of prepared-but-aborted subtransactions and
    the resubmission reads a different view — the guarantee falls.
    """
    rows: List[List[object]] = []
    for policy in policies:
        denials = 0
        violations_allowed = 0
        distorted_runs = 0
        guarantee_failures = 0
        for seed in seeds:
            system = _system(
                "2cm",
                seed=seed,
                sites=("a", "b"),
                dlu_policy=policy,
                latency_stretch=40.0,
            )
            RandomFailureInjector(
                system, probability=0.9, seed=seed, max_delay=10.0
            )
            schedule = _workload(
                seed=seed,
                n_global=6,
                n_local=12,
                keys_per_site=6,
                update_fraction=1.0,
                local_update_fraction=1.0,
                mean_interarrival=6.0,
            )
            run_schedule(system, schedule)
            report = audit(system)
            for guard in system.guards.values():
                denials += guard.denials
                violations_allowed += guard.violations_allowed
            if report.distortions.has_global_distortion:
                distorted_runs += 1
            if not guarantee_holds(report):
                guarantee_failures += 1
        rows.append(
            [
                policy.value,
                denials,
                violations_allowed,
                distorted_runs,
                guarantee_failures,
            ]
        )
    return rows


# ----------------------------------------------------------------------
# E12: the SRS assumption, ablated
# ----------------------------------------------------------------------


def exp_srs_ablation(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[List[object]]:
    """Rigorous vs non-rigorous local schedulers under 2CM.

    A non-rigorous LTM (early read-lock release) breaks the Conflict
    Detection Basis the certifier stands on: rigor violations appear
    and the guarantee can fall even with every certification on.
    """
    rows: List[List[object]] = []
    for rigorous in (True, False):
        violations = 0
        guarantee_failures = 0
        for seed in seeds:
            system = _system(
                "2cm",
                seed=seed,
                sites=("a", "b"),
                ltm=LTMConfig(rigorous=rigorous, lock_timeout=200.0),
            )
            RandomFailureInjector(system, probability=0.5, seed=seed)
            schedule = _workload(
                seed=seed,
                n_global=10,
                keys_per_site=8,
                update_fraction=0.7,
                mean_interarrival=4.0,
            )
            run_schedule(system, schedule)
            report = audit(system)
            violations += report.rigor_violations
            if not guarantee_holds(report):
                guarantee_failures += 1
        rows.append(
            ["rigorous" if rigorous else "non-rigorous", violations, guarantee_failures]
        )
    return rows


# ----------------------------------------------------------------------
# E13: throughput / latency scaling, 2CM vs CGM
# ----------------------------------------------------------------------


def exp_scaling(
    site_counts: Sequence[int] = (2, 4, 6),
    methods: Sequence[str] = ("2cm", "cgm"),
    seeds: Sequence[int] = (1, 2),
    n_global: int = 24,
) -> List[List[object]]:
    """Commit throughput and latency as the federation grows."""
    rows: List[List[object]] = []
    for n_sites in site_counts:
        sites = tuple(chr(ord("a") + i) for i in range(n_sites))
        for method in methods:
            committed = 0
            latencies: List[float] = []
            sim_time = 0.0
            delays = 0
            for seed in seeds:
                system = _system(method, seed=seed, sites=sites)
                schedule = _workload(
                    seed=seed,
                    n_global=n_global,
                    sites=sites,
                    sites_max=min(3, n_sites),
                    mean_interarrival=8.0,
                    n_tables=6,
                )
                result = run_schedule(system, schedule)
                metrics = collect_metrics(system, latencies=result.commit_latencies)
                committed += metrics.global_committed
                latencies.extend(metrics.latencies)
                sim_time += metrics.sim_time
                delays += metrics.commit_delays
                if system.scheduler is not None:
                    delays += system.scheduler.admission_waits
            from repro.sim.stats import Summary

            summary = Summary.of(latencies)
            throughput = committed / sim_time if sim_time else 0.0
            rows.append(
                [
                    n_sites,
                    method,
                    committed,
                    throughput,
                    summary.mean,
                    summary.p95,
                    delays,
                ]
            )
    return rows


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------


def _system(
    method: str,
    seed: int,
    sites: Tuple[str, ...],
    clock_offsets: Optional[Dict[str, float]] = None,
    dlu_policy: DLUPolicy = DLUPolicy.ABORT,
    ltm: Optional[LTMConfig] = None,
    agent: Optional[AgentConfig] = None,
    latency_stretch: Optional[float] = None,
) -> MultidatabaseSystem:
    from repro.net.network import LatencyModel

    latency = LatencyModel(base=5.0, jitter=2.0)
    if latency_stretch is not None:
        # Stretch the coordinator->site channels so prepared windows are
        # long enough for locals to collide with bound data (E11).
        overrides = {
            (f"coord:c{i}", f"agent:{site}"): latency_stretch
            for i in (1, 2)
            for site in sites
        }
        latency = LatencyModel(base=5.0, jitter=2.0, overrides=overrides)
    return MultidatabaseSystem(
        SystemConfig(
            sites=sites,
            n_coordinators=2,
            method=method,
            seed=seed,
            latency=latency,
            clock_offsets=clock_offsets or {},
            dlu_policy=dlu_policy,
            ltm=ltm or LTMConfig(),
            agent=agent or AgentConfig(),
        )
    )


def _workload(
    seed: int,
    n_global: int,
    sites: Tuple[str, ...] = ("a", "b"),
    n_local: int = 0,
    **kwargs,
):
    kwargs.setdefault("keys_per_site", 24)
    kwargs.setdefault("update_fraction", 0.6)
    kwargs.setdefault("mean_interarrival", 12.0)
    kwargs.setdefault("sites_max", min(2, len(sites)))
    return WorkloadGenerator(
        WorkloadConfig(
            sites=sites,
            n_global=n_global,
            n_local=n_local,
            seed=seed,
            **kwargs,
        )
    ).generate()


# ----------------------------------------------------------------------
# E14: the several-intervals optimization (Sec. 4.2), ablated
# ----------------------------------------------------------------------


def exp_interval_memory(
    memories: Sequence[int] = (1, 4),
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    failure_probability: float = 0.5,
) -> List[List[object]]:
    """The paper: "The easiest way ... is to simply store the last alive
    time interval ...  As an optimization, several of them might be
    stored."

    A candidate interval always ends "now", and archived intervals are
    always older than the current one, so — *given the certification-
    time alive-check refresh* — remembering more intervals can never
    change a decision.  This experiment documents that negative result:
    identical refusal counts and outcomes at every memory depth.
    """
    rows: List[List[object]] = []
    for memory in memories:
        refusals = 0
        committed = 0
        aborted = 0
        ok_runs = 0
        for seed in seeds:
            system = MultidatabaseSystem(
                SystemConfig(
                    sites=("a", "b"),
                    n_coordinators=2,
                    method="2cm",
                    seed=seed,
                    max_intervals=memory,
                )
            )
            RandomFailureInjector(system, probability=failure_probability, seed=seed)
            schedule = _workload(seed=seed, n_global=10, n_local=2)
            run_schedule(system, schedule)
            metrics = collect_metrics(system)
            refusals += metrics.refusals_by_reason.get("alive-intersection", 0)
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            if guarantee_holds(audit(system)):
                ok_runs += 1
        rows.append([memory, committed, aborted, refusals, ok_runs == len(seeds)])
    return rows


# ----------------------------------------------------------------------
# E16: prepared-state durability across agent restarts (extension)
# ----------------------------------------------------------------------


def exp_agent_restarts(
    restart_counts: Sequence[int] = (0, 1, 3, 6),
    seeds: Sequence[int] = (1, 2, 3),
    n_global: int = 15,
) -> List[List[object]]:
    """Commit success and correctness as 2PC Agents keep crashing.

    The Agent log is the durable half of the simulated prepared state;
    every READY promise must be honoured no matter how many times the
    agent process restarts mid-protocol.  Restarts are spread over the
    run at one random site each.
    """
    import random as _random

    rows: List[List[object]] = []
    for n_restarts in restart_counts:
        committed = 0
        aborted = 0
        resubmissions = 0
        ok_runs = 0
        for seed in seeds:
            system = _system(
                "2cm",
                seed=seed,
                sites=("a", "b"),
                agent=AgentConfig(alive_check_interval=25.0),
            )
            RandomFailureInjector(system, probability=0.2, seed=seed)
            rng = _random.Random(seed * 1000 + n_restarts)
            for index in range(n_restarts):
                at = 60.0 + index * 80.0 + rng.uniform(0, 40.0)
                site = rng.choice(("a", "b"))
                system.kernel.schedule_at(
                    at, lambda s=site: system.agent(s).simulate_restart()
                )
            schedule = _workload(seed=seed, n_global=n_global, n_local=2)
            run_schedule(system, schedule)
            metrics = collect_metrics(system)
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            resubmissions += metrics.resubmissions
            if guarantee_holds(audit(system)):
                ok_runs += 1
        rows.append(
            [n_restarts, committed, aborted, resubmissions, ok_runs == len(seeds)]
        )
    return rows


# ----------------------------------------------------------------------
# E17: conflict-aware vs conflict-blind prepare certification
# ----------------------------------------------------------------------


def exp_conflict_awareness(
    seeds: Sequence[int] = (1, 2, 3, 4),
    failure_probability: float = 0.5,
) -> List[List[object]]:
    """Why is the alive-interval rule conflict-*blind*?

    The authors' earlier 2PC-Agent paper envisioned conflict detection
    "based on the knowledge of the commands" — approximated here by
    refusing a disjoint-interval candidate only when its access set
    directly intersects the prepared entry's.  On random failing
    workloads that variant refuses strictly less; but it cannot see
    indirect conflicts through (DTM-invisible) local transactions, so
    the H2' scenario slips past its prepare certification — surviving
    only because the commit certification converts the cycle into a
    deadlock that kills the bridging local transaction.  The paper's
    conflict-blind rule refuses the dangerous global instead and leaves
    the local unharmed.
    """
    from repro.workload.scenarios import run_h2_indirect

    rows: List[List[object]] = []
    for method in ("2cm", "2cm-conflict-aware"):
        refusals = 0
        committed = 0
        for seed in seeds:
            system = _system(method, seed=seed, sites=("a", "b"))
            RandomFailureInjector(system, probability=failure_probability, seed=seed)
            schedule = _workload(seed=seed, n_global=10, n_local=2)
            run_schedule(system, schedule)
            metrics = collect_metrics(system)
            refusals += metrics.refusals_by_reason.get("alive-intersection", 0)
            committed += metrics.global_committed
        scenario = run_h2_indirect(method)
        t3 = scenario.outcome(3)
        from repro.common.ids import local_txn as _local_txn

        l4 = scenario.local_outcomes.get(_local_txn(4, "a"))
        if l4 is None:
            l4_status = "never-ran"  # T3 refused: no prepare, no window
        elif l4.committed:
            l4_status = "commit"
        else:
            l4_status = str(l4.reason)
        rows.append(
            [
                method,
                refusals,
                committed,
                "commit" if t3.committed else "refused",
                l4_status,
                scenario.audit.view_serializability.serializable,
            ]
        )
    # The corruption the variant risks, witnessed without the backstop.
    scenario = run_h2_indirect("naive")
    rows.append(
        [
            "naive",
            0,
            0,
            "commit",
            "commit",
            scenario.audit.view_serializability.serializable,
        ]
    )
    return rows


# ----------------------------------------------------------------------
# E18: interleaving robustness — many seeded schedules per method
# ----------------------------------------------------------------------


def exp_interleaving_robustness(
    methods: Sequence[str] = ("2cm", "naive"),
    n_seeds: int = 40,
    failure_probability: float = 0.5,
) -> List[List[object]]:
    """Sweep many independent interleavings per method.

    Each seed draws a different workload, different network jitter and
    different failure timing — a different interleaving of the same
    *kind* of execution.  The claim under test is universal ("view
    serializable histories are guaranteed"), so it deserves volume:
    2CM must come out clean in every single interleaving while the
    naive baseline corrupts some fraction of them.
    """
    rows: List[List[object]] = []
    for method in methods:
        clean = 0
        corrupted = 0
        committed = 0
        aborted = 0
        resubmissions = 0
        for seed in range(1, n_seeds + 1):
            system = _system(method, seed=seed, sites=("a", "b"))
            RandomFailureInjector(
                system, probability=failure_probability, seed=seed * 7 + 1
            )
            schedule = _workload(
                seed=seed * 13 + 5,
                n_global=8,
                n_local=2,
                keys_per_site=12,
                update_fraction=0.7,
                mean_interarrival=10.0,
            )
            run_schedule(system, schedule)
            metrics = collect_metrics(system)
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            resubmissions += metrics.resubmissions
            if guarantee_holds(audit(system)):
                clean += 1
            else:
                corrupted += 1
        rows.append(
            [
                method,
                n_seeds,
                clean,
                corrupted,
                committed,
                aborted,
                resubmissions,
            ]
        )
    return rows
