"""Small statistics helpers for the experiment tables.

No numpy dependency is needed at this scale; everything here is exact
over the collected samples.  ``Summary`` is what latency columns in the
benchmark tables are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence


def merge_counts(*counts: Mapping[str, int]) -> Dict[str, int]:
    """Key-wise sum of count dictionaries.

    Used to aggregate per-site breakdowns (e.g. the Agent logs'
    ``force_writes_by_kind``) into the system-wide I/O table.
    """
    total: Dict[str, int] = {}
    for mapping in counts:
        for key, value in mapping.items():
            total[key] = total.get(key, 0) + value
    return total


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) with linear interpolation.

    Matches the "linear" method of numpy.percentile; defined as 0.0 on
    an empty sample set (benchmark tables print it rather than crash).
    """
    if not samples:
        return 0.0
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"quantile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    # a + f*(b-a) rather than a*(1-f)+b*f: exact when a == b, keeping
    # the result inside [min, max] and monotone in q despite rounding.
    return ordered[lower] + fraction * (ordered[upper] - ordered[lower])


def mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples) if samples else 0.0


def stddev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator)."""
    if len(samples) < 2:
        return 0.0
    centre = mean(samples)
    return math.sqrt(
        sum((value - centre) ** 2 for value in samples) / (len(samples) - 1)
    )


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    max: float

    @staticmethod
    def of(samples: Iterable[float]) -> "Summary":
        values: List[float] = list(samples)
        return Summary(
            n=len(values),
            mean=mean(values),
            std=stddev(values),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
            max=max(values) if values else 0.0,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"n={self.n} mean={self.mean:.2f} std={self.std:.2f} "
            f"p50={self.p50:.2f} p95={self.p95:.2f} max={self.max:.2f}"
        )
