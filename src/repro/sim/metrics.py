"""Aggregate metrics and the correctness audit.

:func:`collect_metrics` pulls every counter the components maintain
into one flat, comparable structure; :func:`audit` runs the full
correctness battery over the recorded history:

* local histories rigorous (validates the SRS substrate);
* ``C(H)`` view serializable (the paper's ultimate criterion);
* structural distortion detectors (global view splits / decomposition
  changes, commit-order-graph cycles);
* the serialization graph for reference (may legitimately be cyclic
  while the history is still view serializable — paper Sec. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import RefusalReason
from repro.core.dtm import MultidatabaseSystem
from repro.federation.leases import LeasedSN
from repro.history.committed import CommittedProjection, committed_projection
from repro.history.distortion import DistortionReport, find_distortions
from repro.history.graphs import find_cycle, serialization_graph
from repro.history.rigor import check_rigorous
from repro.history.viewser import ViewSerializabilityResult, check_view_serializable
from repro.sim.stats import merge_counts


@dataclass
class SystemMetrics:
    """Flat counter snapshot of one run (one system, one workload)."""

    method: str
    global_committed: int = 0
    global_aborted: int = 0
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    refusals_by_reason: Dict[str, int] = field(default_factory=dict)
    resubmissions: int = 0
    unilateral_aborts: int = 0
    local_commits: int = 0
    local_aborts: int = 0
    lock_waits: int = 0
    lock_timeouts: int = 0
    alive_checks: int = 0
    prepare_checks: int = 0
    commit_delays: int = 0
    # -- indexed certification engine (all 0 under the naive engine) ---
    #: Records currently held across the certifiers' lazy index heaps.
    cert_index_depth: int = 0
    #: Epoch GC sweeps (index compactions) across all certifiers.
    cert_gc_compactions: int = 0
    #: Stale index records reclaimed by epoch GC.
    cert_gc_reclaimed: int = 0
    #: PREPARE groups certified as one batch (AgentConfig.batch_prepares).
    prepare_batches: int = 0
    #: DONE agent entries dropped on the END watermark (gc_done_txns).
    done_txns_forgotten: int = 0
    dlu_denials: int = 0
    dlu_blocks: int = 0
    messages: int = 0
    force_writes: int = 0
    #: The force-write I/O breakdown: prepare/commit/discard records
    #: from the Agent logs plus the coordinators' decision records.
    force_writes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Physical fsyncs actually issued (0 unless durability is on;
    #: group commit makes this < the force-write count).
    fsyncs: int = 0
    agent_crashes: int = 0
    agent_restarts: int = 0
    # -- transport faults and the session layer (all 0 on the perfect
    # wire, so fault-free metric snapshots are unchanged) --------------
    messages_lost: int = 0
    messages_duplicated: int = 0
    messages_spiked: int = 0
    partition_drops: int = 0
    retransmits: int = 0
    dups_dropped: int = 0
    acks_sent: int = 0
    session_resets: int = 0
    #: Messages the bounded network trace could not record.
    trace_dropped: int = 0
    #: Undeliverable messages (paused-channel drains + abandoned
    #: retransmission windows) — never silently dropped.
    dead_letters: int = 0
    #: Dead letters evicted from the bounded lists (the loss is counted,
    #: never silent).
    dead_letters_dropped: int = 0
    quarantine_refusals: int = 0
    # -- overload layer (all 0 with OverloadConfig off) ----------------
    #: Globals the admission controllers accepted.
    overload_admitted: int = 0
    #: Globals refused at BEGIN by admission control (load shedding).
    overload_shed: int = 0
    #: Globals aborted at a coordinator deadline gate.
    deadline_aborts: int = 0
    #: Globals refused because a site's circuit breaker was open.
    breaker_refusals: int = 0
    #: Circuit-breaker CLOSED/HALF_OPEN → OPEN transitions.
    breaker_opens: int = 0
    #: Failed resubmission attempts across all agents.
    resubmit_failures: int = 0
    #: GIVEUP escalations the agents sent.
    giveups_sent: int = 0
    #: Globals the coordinators aborted on a GIVEUP hint.
    giveup_aborts: int = 0
    # -- federation layer (all 0 with SystemConfig.federation None) ----
    #: SN-lease grants the allocator issued.
    lease_grants: int = 0
    #: Lease activations across the coordinators' LeasedSN generators.
    lease_refills: int = 0
    #: Emergency HLC draws taken with no usable lease.
    lease_fallback_draws: int = 0
    #: BEGINs a coordinator refused because it does not own the shard.
    wrong_shard_refusals: int = 0
    #: Refused submissions the router re-sent to the redirect hint.
    wrong_shard_forwarded: int = 0
    #: Stale-epoch BEGINs the agents fenced (deposed-owner protection).
    fenced_begins: int = 0
    #: Completed live shard handoffs (and those forced at drain timeout).
    handoffs: int = 0
    forced_handoffs: int = 0
    handoff_durations: List[float] = field(default_factory=list)
    #: Max concurrent in-flight globals any coordinator held on one shard.
    shard_inflight_peak: int = 0
    #: Live per-shard in-flight gauge at snapshot time (shard -> count).
    shard_inflight: Dict[int, int] = field(default_factory=dict)
    sim_time: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def abort_rate(self) -> float:
        total = self.global_committed + self.global_aborted
        return self.global_aborted / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def throughput(self) -> float:
        return self.global_committed / self.sim_time if self.sim_time else 0.0

    def latency_percentile(self, fraction: float) -> float:
        return percentile(self.latencies, fraction)


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values``; ``fraction`` in [0, 1].

    The empirical quantile benchmark reports want (p50/p99 of observed
    commit latencies): always an actually-observed value, no
    interpolation, 0.0 for an empty sample.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(len(ordered), rank) - 1]


def collect_metrics(
    system: MultidatabaseSystem, latencies: Optional[List[float]] = None
) -> SystemMetrics:
    """Aggregate all component counters of ``system``."""
    metrics = SystemMetrics(method=system.config.method)
    for coordinator in system.coordinators:
        metrics.global_committed += coordinator.committed
        metrics.global_aborted += coordinator.aborted
        metrics.force_writes += coordinator.decisions_logged
        metrics.force_writes_by_kind = merge_counts(
            metrics.force_writes_by_kind,
            {"decision": coordinator.decisions_logged},
        )
        if coordinator.decision_log is not None:
            metrics.fsyncs += coordinator.decision_log.wal.fsyncs
        for reason, count in coordinator.aborts_by_reason.items():
            key = str(reason)
            metrics.aborts_by_reason[key] = (
                metrics.aborts_by_reason.get(key, 0) + count
            )
        metrics.deadline_aborts += coordinator.deadline_aborts
        metrics.breaker_refusals += coordinator.breaker_refusals
        metrics.giveup_aborts += coordinator.giveup_aborts
        if coordinator.admission is not None:
            metrics.overload_admitted += coordinator.admission.admitted
            metrics.overload_shed += coordinator.admission.shed
        metrics.wrong_shard_refusals += coordinator.wrong_shard_refusals
        metrics.shard_inflight_peak = max(
            metrics.shard_inflight_peak, coordinator.shard_inflight_peak
        )
        metrics.shard_inflight = merge_counts(
            metrics.shard_inflight, coordinator.shard_inflight_by_shard()
        )
        if isinstance(coordinator.sn_generator, LeasedSN):
            metrics.lease_refills += coordinator.sn_generator.refills
            metrics.lease_fallback_draws += (
                coordinator.sn_generator.fallback_draws
            )
    for site in system.config.sites:
        agent = system.agent(site)
        ltm = system.ltm(site)
        certifier = system.certifier(site)
        guard = system.guards[site]
        for reason, count in agent.refusals.items():
            key = str(reason)
            metrics.refusals_by_reason[key] = (
                metrics.refusals_by_reason.get(key, 0) + count
            )
        metrics.fenced_begins += agent.fenced_begins
        metrics.resubmissions += agent.resubmissions
        metrics.resubmit_failures += agent.resubmit_failures
        metrics.giveups_sent += agent.giveups_sent
        metrics.alive_checks += agent.alive_checks
        metrics.unilateral_aborts += ltm.unilateral_aborts
        metrics.local_commits += ltm.commits
        metrics.local_aborts += ltm.aborts
        metrics.lock_waits += ltm.locks.waits
        metrics.lock_timeouts += ltm.locks.timeouts
        metrics.prepare_checks += certifier.prepare_checks
        metrics.commit_delays += certifier.commit_delays
        metrics.cert_index_depth += certifier.index_depth()
        metrics.cert_gc_compactions += certifier.gc_compactions
        metrics.cert_gc_reclaimed += certifier.gc_reclaimed
        metrics.prepare_batches += agent.prepare_batches
        metrics.done_txns_forgotten += agent.done_forgotten
        metrics.dlu_denials += guard.denials
        metrics.dlu_blocks += guard.blocks
        metrics.force_writes += agent.log.force_writes
        metrics.force_writes_by_kind = merge_counts(
            metrics.force_writes_by_kind, agent.log.force_writes_by_kind
        )
        metrics.agent_crashes += agent.crashes
        metrics.agent_restarts += agent.restarts
        wal = getattr(agent.log, "wal", None)
        if wal is not None:
            metrics.fsyncs += wal.fsyncs
    network = system.network
    metrics.messages = network.messages_sent
    metrics.trace_dropped = network.trace_dropped
    metrics.dead_letters = len(network.dead_letters)
    metrics.dead_letters_dropped = network.dead_letters_dropped
    # Fault-layer counters exist only on a FaultyNetwork.
    metrics.messages_lost = getattr(network, "messages_lost", 0)
    metrics.messages_duplicated = getattr(network, "messages_duplicated", 0)
    metrics.messages_spiked = getattr(network, "messages_spiked", 0)
    metrics.partition_drops = getattr(network, "partition_drops", 0)
    session = getattr(system, "session", None)
    if session is not None:
        metrics.retransmits = session.retransmits
        metrics.dups_dropped = session.dups_dropped
        metrics.acks_sent = session.acks_sent
        metrics.session_resets = session.session_resets
        metrics.dead_letters += len(session.dead_letters)
        metrics.dead_letters_dropped += session.dead_letters_dropped
    breakers = getattr(system, "breakers", None)
    if breakers is not None:
        metrics.breaker_opens = breakers.opens
    for coordinator in system.coordinators:
        metrics.quarantine_refusals += coordinator.quarantine_refusals
    if getattr(system, "sn_allocator", None) is not None:
        metrics.lease_grants = system.sn_allocator.grants
    metrics.handoffs = getattr(system, "handoffs", 0)
    metrics.forced_handoffs = getattr(system, "forced_handoffs", 0)
    metrics.handoff_durations = list(getattr(system, "handoff_durations", []))
    metrics.wrong_shard_forwarded = getattr(system, "wrong_shard_forwarded", 0)
    metrics.sim_time = system.kernel.now
    if latencies is not None:
        metrics.latencies = list(latencies)
    return metrics


@dataclass
class CorrectnessAudit:
    """The full correctness battery over one recorded history."""

    projection: CommittedProjection
    view_serializability: ViewSerializabilityResult
    distortions: DistortionReport
    rigor_violations: int
    sg_cycle: Optional[list]

    @property
    def ok(self) -> bool:
        """The paper's guarantee, in full.

        View serializability of ``C(H)`` *and* no global view
        distortion.  The extra clause matters for decomposition
        changes: the replay-based checker compares recorded reads-from
        against serial arrangements of the *recorded* blocks, but a
        block whose incarnations decomposed differently can be
        reads-from-consistent with a serial order that no DDF-obeying
        execution could produce (the serial order would have given the
        original incarnation the same, changed decomposition).  The
        paper treats any decomposition change as non-serial, so the
        audit does too.
        """
        return (
            bool(self.view_serializability.serializable)
            and self.rigor_violations == 0
            and not self.distortions.has_global_distortion
        )

    def summary(self) -> str:
        vs = self.view_serializability
        lines = [
            f"C(H) transactions: {len(self.projection.txns)}",
            f"view serializable: {vs.serializable} ({vs.reason})",
            f"rigor violations: {self.rigor_violations}",
            f"global view distortion: {self.distortions.has_global_distortion}",
            f"CG cycle: {self.distortions.commit_graph_cycle}",
            f"SG cycle: {self.sg_cycle}",
        ]
        return "\n".join(lines)


def audit(system: MultidatabaseSystem, max_txns: int = 9) -> CorrectnessAudit:
    """Run every checker over ``system``'s recorded history."""
    projection = committed_projection(system.history)
    view = check_view_serializable(projection, max_txns=max_txns)
    distortions = find_distortions(projection)
    violations = check_rigorous(system.history.ops)
    sg = serialization_graph(projection.data_ops())
    return CorrectnessAudit(
        projection=projection,
        view_serializability=view,
        distortions=distortions,
        rigor_violations=len(violations),
        sg_cycle=find_cycle(sg),
    )
