"""Swimlane timeline rendering of a recorded history.

One text lane per site (plus a lane for the coordinators' global
decisions), events in time order — the quickest way to *see* a race
like Hx's COMMIT-overtakes-PREPARE or H1's resubmission window.  Used
by the CLI (``python -m repro scenario H1 --timeline``) and handy in
notebooks and debugging sessions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.history.model import History, OpKind, Operation

#: Compact event tags per op kind.
_TAGS = {
    OpKind.READ: "r",
    OpKind.WRITE: "w",
    OpKind.PREPARE: "P",
    OpKind.LOCAL_COMMIT: "C",
    OpKind.LOCAL_ABORT: "A",
    OpKind.GLOBAL_COMMIT: "C!",
    OpKind.GLOBAL_ABORT: "A!",
}


def _describe(op: Operation) -> str:
    tag = _TAGS[op.kind]
    if op.kind in (OpKind.READ, OpKind.WRITE):
        assert op.subtxn is not None
        inc = "" if op.txn.is_local else str(op.subtxn.incarnation)
        return f"{tag}{op.txn.label}{inc}({op.item.key!r})"
    if op.kind is OpKind.PREPARE:
        return f"P({op.txn.label})"
    if op.kind is OpKind.LOCAL_COMMIT:
        assert op.subtxn is not None
        inc = "" if op.txn.is_local else str(op.subtxn.incarnation)
        return f"C({op.txn.label}{inc})"
    if op.kind is OpKind.LOCAL_ABORT:
        assert op.subtxn is not None
        inc = "" if op.txn.is_local else str(op.subtxn.incarnation)
        flavour = "!" if op.unilateral else ""
        return f"A{flavour}({op.txn.label}{inc})"
    return f"{tag}({op.txn.label})"


def render_timeline(
    history: History,
    sites: Optional[Iterable[str]] = None,
    width: int = 100,
    coalesce: float = 0.0,
) -> str:
    """Render the history as per-site swimlanes.

    ``coalesce`` groups events closer than that many time units into
    one line (keeps dense command bursts readable).
    """
    lanes: List[str] = list(sites) if sites is not None else history.sites()
    lanes.append("@global")
    rows: List[tuple] = []
    for op in history.ops:
        lane = op.site if op.site is not None else "@global"
        rows.append((op.time, lane, _describe(op)))
    if not rows:
        return "(empty history)"

    lines: List[str] = []
    lane_width = max(len(lane) for lane in lanes) + 2
    header = "time".rjust(9) + " | " + " | ".join(
        lane.ljust(18) for lane in lanes
    )
    lines.append(header)
    lines.append("-" * min(len(header), width))

    pending: Optional[List] = None

    def flush() -> None:
        if pending is None:
            return
        time_str = f"{pending[0]:9.2f}"
        cells = []
        for lane in lanes:
            cells.append(" ".join(pending[1].get(lane, []))[:18].ljust(18))
        lines.append(time_str + " | " + " | ".join(cells))

    for time, lane, text in rows:
        if pending is not None and time - pending[0] <= coalesce:
            pending[1].setdefault(lane, []).append(text)
            continue
        flush()
        pending = [time, {lane: [text]}]
    flush()
    return "\n".join(lines)
