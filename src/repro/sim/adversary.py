"""Adversarial configuration search: find the anomalies automatically.

The scripted scenarios pin one corrupting interleaving each.  This
module *searches* for them: it draws random timing configurations
(per-channel latencies, submission offsets, failure injection delays)
for a small transaction template, runs each under the naive method, and
collects the configurations whose history corrupts.  Each discovered
configuration is then replayed under 2CM, which must come out clean —
an automated version of the paper's "anomaly, then fix" argument over a
whole family of races instead of a hand-picked one.

The knobs are drawn through the same choice-point machinery the
schedule explorer uses (:mod:`repro.explore.trace`): each knob is one
recorded decision over a fixed menu (:data:`MENU`), so a configuration
*is* a flat choice trace — ``config_from_chooser(TraceChooser(trace))``
rebuilds it, and a corrupting configuration can be persisted and
replayed exactly like an explorer ``.schedule``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.ids import global_txn
from repro.core.agent import AgentConfig
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.explore.trace import TraceChooser, UniformChooser
from repro.history.model import OpKind
from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    InsertItem,
    ReadItem,
    UpdateItem,
)
from repro.ldbs.ltm import LTMConfig
from repro.net.network import LatencyModel
from repro.sim.failures import abort_current_incarnation
from repro.sim.metrics import audit

#: The (coordinator, site) channels whose latency the adversary sets.
CHANNELS: Tuple[Tuple[str, str], ...] = (
    ("coord:c1", "agent:a"),
    ("coord:c1", "agent:b"),
    ("coord:c2", "agent:a"),
    ("coord:c2", "agent:b"),
)

#: The decision menu of the template race, in draw order: one
#: ``(kind, options)`` entry per knob.  A configuration is one index
#: per entry — the explorer's flat choice-trace format.
MENU: Tuple[Tuple[str, Tuple[object, ...]], ...] = tuple(
    [
        (
            f"adv:latency:{src.split(':')[1]}->{dst.split(':')[1]}",
            (5.0, 15.0, 40.0, 80.0, 120.0),
        )
        for src, dst in CHANNELS
    ]
    + [
        ("adv:t2-delay", (1.0, 5.0, 15.0, 40.0)),
        ("adv:local-delay", (5.0, 20.0, 50.0, 90.0)),
        ("adv:abort-delay", (None, 1.0, 5.0, 20.0)),
    ]
)


@dataclass(frozen=True)
class AdversaryConfig:
    """One timing configuration of the template race."""

    #: Latency per (coordinator, site) channel.
    latencies: Tuple[Tuple[Tuple[str, str], float], ...]
    #: When T2 starts, relative to C_1 being decided.
    t2_delay: float
    #: When the local reader starts, relative to C_1.
    local_delay: float
    #: Unilateral-abort injection delay after C_1 (site a), or None.
    abort_delay: Optional[float]

    def describe(self) -> str:
        lat = ", ".join(f"{src.split(':')[1]}->{dst.split(':')[1]}={v:g}"
                        for (src, dst), v in self.latencies)
        abort = "none" if self.abort_delay is None else f"{self.abort_delay:g}"
        return (
            f"latencies[{lat}] t2@C1+{self.t2_delay:g} "
            f"local@C1+{self.local_delay:g} abort@C1+{abort}"
        )

    def to_trace(self) -> List[int]:
        """This configuration as a flat choice trace over :data:`MENU`."""
        values = [value for _, value in self.latencies]
        values += [self.t2_delay, self.local_delay, self.abort_delay]
        return [
            options.index(value)
            for (_, options), value in zip(MENU, values)
        ]


def config_from_chooser(chooser) -> AdversaryConfig:
    """Draw every knob through one chooser (the choice-point protocol)."""
    picks = [
        options[chooser.choose(kind, len(options), context=kind)]
        for kind, options in MENU
    ]
    n = len(CHANNELS)
    return AdversaryConfig(
        latencies=tuple(zip(CHANNELS, picks[:n])),
        t2_delay=picks[n],
        local_delay=picks[n + 1],
        abort_delay=picks[n + 2],
    )


def config_from_trace(trace: List[int]) -> AdversaryConfig:
    """Rebuild a configuration from its recorded choice trace."""
    return config_from_chooser(TraceChooser(trace))


@dataclass
class SearchResult:
    """Outcome of one adversarial search."""

    tried: int = 0
    corrupting: List[AdversaryConfig] = field(default_factory=list)
    #: Configurations that corrupted naive but ALSO corrupted 2cm
    #: (must stay empty — the headline assertion).
    defeats_2cm: List[AdversaryConfig] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return len(self.corrupting) / self.tried if self.tried else 0.0


def draw_config(rng: random.Random) -> AdversaryConfig:
    """Sample one configuration of the template race.

    A uniform draw per menu entry — exactly the distribution (and, for
    a given ``rng`` state, the exact draw sequence) the old inline
    ``rng.choice`` knob-drawing produced, but recorded as choice
    points.
    """
    return config_from_chooser(UniformChooser(rng))


def run_template(method: str, config: AdversaryConfig) -> bool:
    """Run the race template under ``config``; True = history clean.

    Template: T1 (read X, update Y at a; update Z at b) races T2
    (delete Y, update X at a; update Z at b) around an optional
    unilateral abort of T1 at site a, with a local reader of X/Y at a
    in the middle — the H1/H2 family, with every timing free.
    """
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("a", "b"),
            n_coordinators=2,
            method=method,
            latency=LatencyModel(base=5.0, overrides=dict(config.latencies)),
            ltm=LTMConfig(lock_timeout=3000.0),
            agent=AgentConfig(alive_check_interval=400.0),
        )
    )
    system.load("a", "acct", {"X": 100, "Y": 50})
    system.load("b", "acct", {"Z": 10})

    t1 = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("a", ReadItem("acct", "X")),
            ("a", UpdateItem("acct", "Y", AddValue(5))),
            ("b", UpdateItem("acct", "Z", AddValue(1))),
        ),
    )
    t2 = GlobalTransactionSpec(
        txn=global_txn(2),
        steps=(
            ("a", DeleteItem("acct", "Y")),
            ("a", UpdateItem("acct", "X", AddValue(-10))),
            ("b", UpdateItem("acct", "Z", AddValue(2))),
        ),
    )
    system.submit(t1, coordinator=0)

    fired = [False]

    def on_decision(op) -> None:
        if fired[0] or op.kind is not OpKind.GLOBAL_COMMIT or op.txn != t1.txn:
            return
        fired[0] = True
        if config.abort_delay is not None:
            system.kernel.schedule(
                config.abort_delay,
                lambda: abort_current_incarnation(system, t1.txn, "a"),
            )
        system.kernel.schedule(
            config.t2_delay, lambda: system.submit(t2, coordinator=1)
        )
        system.kernel.schedule(
            config.local_delay,
            lambda: system.submit_local(
                "a",
                [
                    ReadItem("acct", "X"),
                    ReadItem("acct", "Y"),
                    InsertItem("acct", "U", 1),
                ],
                number=4,
            ),
        )

    system.history.subscribe(on_decision)
    system.run(until=50_000.0, advance=False)
    report = audit(system)
    return (
        bool(report.view_serializability.serializable)
        and report.rigor_violations == 0
        and not report.distortions.has_global_distortion
        and report.distortions.commit_graph_cycle is None
    )


def search(
    n_configs: int = 100, seed: int = 0, verify_2cm: bool = True
) -> SearchResult:
    """Fuzz ``n_configs`` random configurations.

    Every configuration that corrupts ``naive`` is (optionally)
    replayed under ``2cm``; any that corrupts 2CM too lands in
    ``defeats_2cm`` — which the benchmark asserts is empty.
    """
    rng = random.Random(seed)
    result = SearchResult()
    for _ in range(n_configs):
        config = draw_config(rng)
        result.tried += 1
        if run_template("naive", config):
            continue
        result.corrupting.append(config)
        if verify_2cm and not run_template("2cm", config):
            result.defeats_2cm.append(config)
    return result
