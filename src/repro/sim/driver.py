"""The simulation driver: schedules → outcomes.

A :class:`~repro.workload.generator.Schedule` is a deterministic list
of timed submissions (global transactions through coordinators, local
transactions straight into one LTM).  The driver loads the initial
data, arms the submissions on the kernel, runs to quiescence and
gathers outcomes, metrics and (optionally) retries of aborted global
transactions — each retry is a *new* global transaction to the model,
exactly as the paper treats application-level re-execution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.ids import TxnId, global_txn
from repro.core.coordinator import GlobalOutcome, GlobalTransactionSpec
from repro.core.dtm import LocalOutcome, MultidatabaseSystem

#: Retry transaction numbers start here so they never collide with
#: workload-assigned numbers.
_RETRY_BASE = 1_000_000


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one driven run."""

    system: MultidatabaseSystem
    #: Outcome of every global attempt, including retries, keyed by txn.
    global_outcomes: Dict[TxnId, GlobalOutcome] = field(default_factory=dict)
    local_outcomes: Dict[TxnId, LocalOutcome] = field(default_factory=dict)
    #: retry attempt chains: original txn -> list of retry txns.
    retries: Dict[TxnId, List[TxnId]] = field(default_factory=dict)
    finished_at: float = 0.0

    @property
    def committed_globals(self) -> List[TxnId]:
        return sorted(
            txn for txn, out in self.global_outcomes.items() if out.committed
        )

    @property
    def aborted_globals(self) -> List[TxnId]:
        return sorted(
            txn for txn, out in self.global_outcomes.items() if not out.committed
        )

    @property
    def commit_latencies(self) -> List[float]:
        return [
            out.latency for out in self.global_outcomes.values() if out.committed
        ]

    def logical_commit_fraction(self) -> float:
        """Fraction of *original* transactions whose chain committed."""
        originals = [
            txn for txn in self.global_outcomes if txn.number < _RETRY_BASE
        ]
        if not originals:
            return 0.0
        done = 0
        for txn in originals:
            chain = [txn] + self.retries.get(txn, [])
            if any(self.global_outcomes[t].committed for t in chain):
                done += 1
        return done / len(originals)


def run_schedule(
    system: MultidatabaseSystem,
    schedule: "Schedule",
    retry_aborted: int = 0,
    retry_delay: float = 50.0,
    run_limit: float = 10_000_000.0,
) -> SimulationResult:
    """Drive ``schedule`` against ``system`` until quiescence.

    ``retry_aborted`` > 0 re-submits aborted global transactions (with
    fresh transaction ids) up to that many times per original.
    """
    result = SimulationResult(system=system)
    retry_numbers = itertools.count(_RETRY_BASE)

    for site, tables in schedule.initial_data.items():
        for table, rows in tables.items():
            system.load(site, table, rows)

    def submit_global(
        spec: GlobalTransactionSpec, original: TxnId, attempts_left: int
    ) -> None:
        completion = system.submit(spec)

        def done(event) -> None:
            if event.error is not None:
                raise SimulationError(
                    f"coordinator process for {spec.txn} died: {event.error!r}"
                ) from event.error
            outcome: GlobalOutcome = event.value
            result.global_outcomes[spec.txn] = outcome
            if outcome.committed or attempts_left <= 0:
                return
            retry_txn = global_txn(next(retry_numbers))
            result.retries.setdefault(original, []).append(retry_txn)
            retry_spec = GlobalTransactionSpec(
                txn=retry_txn, steps=spec.steps, think_time=spec.think_time
            )
            system.kernel.schedule(
                retry_delay,
                lambda: submit_global(retry_spec, original, attempts_left - 1),
            )

        completion.subscribe(done)

    for entry in schedule.globals_:
        system.kernel.schedule(
            entry.at,
            lambda e=entry: submit_global(e.spec, e.spec.txn, retry_aborted),
        )

    def submit_local(entry) -> None:
        completion = system.submit_local(
            entry.site,
            entry.commands,
            number=entry.number,
            think_time=entry.think_time,
        )

        def done(event) -> None:
            if event.error is not None:
                raise SimulationError(
                    f"local txn runner died: {event.error!r}"
                ) from event.error
            outcome: LocalOutcome = event.value
            result.local_outcomes[outcome.txn] = outcome

        completion.subscribe(done)

    for entry in schedule.locals_:
        system.kernel.schedule(entry.at, lambda e=entry: submit_local(e))

    # Single bounded drain: `until` is a pure safety bound and
    # `advance=False` keeps simulated time at the last event instead of
    # fast-forwarding the clock to the limit.  (This replaces the old
    # poll-until-quiescent slice loop, which rescanned the heap between
    # 50k-event slices.)
    system.run(until=run_limit, advance=False)
    if system.kernel.pending:
        raise SimulationError(
            f"run did not quiesce within {run_limit} time units "
            f"({system.kernel.pending} events pending)"
        )
    result.finished_at = system.kernel.now
    return result
