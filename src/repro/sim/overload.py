"""The overload drill: offered load far above capacity, survived.

The chaos nemesis (:mod:`repro.sim.failures`) attacks the *wire*; this
drill attacks the *queue*.  A seeded workload is submitted at a
multiple of the system's comfortable arrival rate while a seeded
unilateral-abort injector keeps resubmission pressure on the certifier
tables.  With the overload layer off the system has no defence: every
arrival is accepted, prepared entries pile up behind head-of-line
commit certifications, and the backlog feeds on itself.  With
:class:`~repro.overload.config.OverloadConfig` on, admission control
sheds the excess at BEGIN, deadlines cut off work that can no longer
finish in time, backoff decorrelates the retriers — and the run drains
to quiescence with every admitted global in a terminal state.

The invariant battery is the point: overload protection must shed
*cleanly*.  No orphaned PREPARED subtransactions, atomic commitment
and view serializability intact, certifier tables empty at the end.
Same seed ⇒ same run, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import RefusalReason
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.invariants import Violation
from repro.overload.config import OverloadConfig
from repro.sim.failures import RandomFailureInjector, invariant_battery
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass(frozen=True)
class OverloadDrillConfig:
    """One seeded overload run: the storm and the defences."""

    seed: int = 0
    sites: Tuple[str, ...] = ("a", "b", "c")
    n_global: int = 120
    n_local: int = 12
    #: Offered-load multiplier: arrivals come ``load`` times faster than
    #: the comfortable baseline (``base_interarrival``).
    load: float = 16.0
    base_interarrival: float = 80.0
    #: Unilateral-abort probability per prepared subtransaction — keeps
    #: the resubmission machinery (and its backoff) in play.  High on
    #: purpose: a stuck low-SN prepared entry is what turns high
    #: concurrency into a death spiral (commit certification is in SN
    #: order, and new prepares fail basic certification against stale
    #: intervals), which is the failure mode shedding defends against.
    failure_probability: float = 0.25
    #: Contention shape: few keys, hot set, update-heavy — conflicts
    #: scale superlinearly with concurrency.
    keys_per_site: int = 16
    hot_keys: int = 4
    hot_access_fraction: float = 0.4
    update_fraction: float = 0.7
    #: Overload layer on (admission + deadlines + backoff + breakers)?
    #: ``False`` runs the same storm unprotected, for comparison.
    shed: bool = True
    #: Admission budget per coordinator when the layer is on.
    max_inflight: int = 10
    #: Deadline stamped on every admitted global when the layer is on.
    default_deadline: float = 3_000.0
    #: Safety bound on simulated time; a run still busy here has wedged.
    run_limit: float = 500_000.0


@dataclass
class OverloadResult:
    """What one drill run did and whether it shed cleanly."""

    seed: int
    load: float
    shed: bool
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    sim_time: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    #: Structured invariant violations (:class:`Violation` — stringify
    #: for prose, ``to_dict`` for JSON); empty = the run is clean.
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def goodput(self) -> float:
        """Committed globals per simulated time unit."""
        return self.committed / self.sim_time if self.sim_time else 0.0

    def summary(self) -> str:
        lines = [
            f"seed {self.seed}: load={self.load:g}x shed={self.shed} "
            f"submitted={self.submitted} committed={self.committed} "
            f"aborted={self.aborted} sim_time={self.sim_time:.0f} "
            f"goodput={self.goodput:.5f}",
            "counters: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items())),
        ]
        if self.violations:
            lines.append("VIOLATIONS:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("invariants: all hold")
        return "\n".join(lines)


def overload_config_for(config: OverloadDrillConfig) -> OverloadConfig:
    """The overload layer the drill enables when ``shed`` is on."""
    return OverloadConfig(
        max_inflight_globals=config.max_inflight,
        default_deadline=config.default_deadline,
    )


def build_overload_system(config: OverloadDrillConfig) -> MultidatabaseSystem:
    """Wire one system for the drill (perfect wire, storm at the door)."""
    return MultidatabaseSystem(
        SystemConfig(
            sites=config.sites,
            n_coordinators=2,
            seed=config.seed,
            overload=overload_config_for(config) if config.shed else None,
        )
    )


def run_overload(config: OverloadDrillConfig) -> OverloadResult:
    """One full drill: storm, drain, invariant battery."""
    from repro.sim.metrics import collect_metrics

    system = build_overload_system(config)
    result = OverloadResult(seed=config.seed, load=config.load, shed=config.shed)

    injector = RandomFailureInjector(
        system,
        probability=config.failure_probability,
        seed=config.seed * 13 + 7,
    )

    workload = WorkloadGenerator(
        WorkloadConfig(
            sites=config.sites,
            n_global=config.n_global,
            n_local=config.n_local,
            mean_interarrival=config.base_interarrival / max(config.load, 1e-9),
            keys_per_site=config.keys_per_site,
            hot_keys=config.hot_keys,
            hot_access_fraction=config.hot_access_fraction,
            update_fraction=config.update_fraction,
            seed=config.seed,
        )
    ).generate()
    for site, tables in workload.initial_data.items():
        for table, rows in tables.items():
            system.load(site, table, rows)

    outcomes = {}

    def submit_global(entry) -> None:
        completion = system.submit(entry.spec)

        def done(event) -> None:
            if event.error is not None:
                result.violations.append(
                    Violation(
                        kind="coordinator-death",
                        detail=(
                            f"coordinator process for {entry.spec.txn} died: "
                            f"{event.error!r}"
                        ),
                        txns=(str(entry.spec.txn),),
                    )
                )
                return
            outcomes[entry.spec.txn] = event.value

        completion.subscribe(done)

    for entry in workload.globals_:
        system.kernel.schedule(entry.at, lambda e=entry: submit_global(e))
    for entry in workload.locals_:
        system.kernel.schedule(
            entry.at,
            lambda e=entry: system.submit_local(
                e.site, e.commands, number=e.number, think_time=e.think_time
            ),
        )

    # -- the storm, driven to quiescence (or the safety bound) ----------
    system.run(until=config.run_limit, advance=False)
    if system.kernel.pending:
        result.violations.append(
            Violation(
                kind="quiesce",
                detail=(
                    f"run did not quiesce within {config.run_limit:g} time "
                    f"units ({system.kernel.pending} events pending)"
                ),
                context={"pending": system.kernel.pending},
            )
        )

    # -- invariant battery ---------------------------------------------
    result.submitted = len(workload.globals_)
    result.committed = sum(1 for o in outcomes.values() if o.committed)
    result.aborted = sum(1 for o in outcomes.values() if not o.committed)
    result.sim_time = system.kernel.now

    if len(outcomes) != len(workload.globals_):
        missing = len(workload.globals_) - len(outcomes)
        result.violations.append(
            Violation(
                kind="non-terminal",
                detail=f"{missing} submitted globals never reached a terminal state",
                context={"missing": missing},
            )
        )

    result.violations.extend(invariant_battery(system))

    for site in config.sites:
        agent = system.agent(site)
        if agent.certifier.table_size() != 0:
            result.violations.append(
                Violation(
                    kind="certifier-leak",
                    detail=(
                        f"certifier table at {site} not empty: "
                        f"{agent.certifier.table_size()} entries"
                    ),
                    sites=(site,),
                    context={"entries": agent.certifier.table_size()},
                )
            )

    system.close()
    metrics = collect_metrics(system)
    result.counters = {
        "admitted": metrics.overload_admitted,
        "shed": metrics.overload_shed,
        "deadline_aborts": metrics.deadline_aborts,
        "deadline_refusals": metrics.refusals_by_reason.get(
            str(RefusalReason.DEADLINE_EXPIRED), 0
        ),
        "breaker_refusals": metrics.breaker_refusals,
        "breaker_opens": metrics.breaker_opens,
        "giveups_sent": metrics.giveups_sent,
        "giveup_aborts": metrics.giveup_aborts,
        "resubmissions": metrics.resubmissions,
        "resubmit_failures": metrics.resubmit_failures,
        "injected_aborts": injector.injected,
        "dead_letters": metrics.dead_letters,
    }
    return result
