"""Plain-text table rendering for the benchmark harness.

Benchmarks print the same kind of rows a paper evaluation section
would; this module keeps the formatting in one place so every bench
output looks alike and EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """A fixed-width table with a title rule, ready for printing."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
