"""Unilateral-abort injection (the paper's failure model).

"Preserving D- and E-autonomy of an LDBS means that it can roll back a
single transaction at any time ... even after all the database commands
have been executed.  The reasons are various implementation-dependent
issues, like the log buffer overflow (INGRES), or unexpected system
bugs."

Two styles of injection:

* **scripted** — the paper's worked histories need a specific abort at
  a specific moment (e.g. H1's ``A^a_10`` *after* the global commit
  decision ``C_1``).  :func:`inject_abort_after_global_commit` and
  :func:`inject_abort_after_prepare` watch the history recorder and
  fire once, deterministically;
* **randomized** — :class:`RandomFailureInjector` flips a seeded coin
  whenever a subtransaction enters the prepared state and schedules an
  abort a random delay later, bounded per subtransaction (the TW
  assumption: after a fixed number of resubmissions the subtransaction
  can commit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import TxnId
from repro.core.agent import CRASH_POINTS
from repro.core.dtm import MultidatabaseSystem
from repro.history.model import OpKind, Operation


def abort_current_incarnation(
    system: MultidatabaseSystem, txn: TxnId, site: str
) -> bool:
    """Unilaterally abort whatever incarnation of ``txn`` currently
    exists at ``site`` (False when it already terminated)."""
    incarnation = system.agent(site).current_incarnation(txn)
    if incarnation is None:
        return False
    return system.ltm(site).unilaterally_abort(incarnation)


def inject_abort_after_global_commit(
    system: MultidatabaseSystem, txn: TxnId, site: str, delay: float = 1.0
) -> None:
    """Arrange ``A^site`` of ``txn`` shortly after ``C_txn`` is recorded.

    This is the H1/H2 pattern: the Coordinator has durably decided to
    commit, every participant voted READY, and *then* the LDBS throws
    the prepared subtransaction away — the exact window the 2PC Agent's
    resubmission exists for.
    """

    def observer(op: Operation) -> None:
        if op.kind is OpKind.GLOBAL_COMMIT and op.txn == txn:
            system.kernel.schedule(
                delay, lambda: abort_current_incarnation(system, txn, site)
            )

    system.history.subscribe(observer)


def inject_abort_after_prepare(
    system: MultidatabaseSystem, txn: TxnId, site: str, delay: float = 1.0
) -> None:
    """Arrange a unilateral abort shortly after ``P^site_txn``."""

    def observer(op: Operation) -> None:
        if op.kind is OpKind.PREPARE and op.txn == txn and op.site == site:
            system.kernel.schedule(
                delay, lambda: abort_current_incarnation(system, txn, site)
            )

    system.history.subscribe(observer)


@dataclass
class RandomFailureInjector:
    """Seeded random unilateral aborts of prepared subtransactions.

    ``probability`` is the chance that one (txn, site) prepared
    subtransaction suffers an abort; when it does, the abort lands a
    uniform random delay in ``[0, max_delay]`` after the prepare.  At
    most ``max_aborts_per_subtxn`` aborts hit any one (txn, site) pair,
    honouring the paper's TW (trustworthiness) assumption.
    """

    system: MultidatabaseSystem
    probability: float
    max_delay: float = 40.0
    max_aborts_per_subtxn: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._aborts: Dict[Tuple[TxnId, str], int] = {}
        self.injected = 0
        #: Every scheduling decision, in decision order — the abort
        #: schedule.  Two injectors with the same seed over the same
        #: workload produce identical logs (determinism contract).
        self.schedule_log: List[Tuple[TxnId, str, float]] = []
        self.system.history.subscribe(self._observe)

    def _observe(self, op: Operation) -> None:
        if op.kind is not OpKind.PREPARE or op.site is None:
            return
        self._maybe_schedule(op.txn, op.site)

    def _maybe_schedule(self, txn: TxnId, site: str) -> None:
        key = (txn, site)
        if self._aborts.get(key, 0) >= self.max_aborts_per_subtxn:
            return
        if self._rng.random() >= self.probability:
            return
        delay = self._rng.uniform(0.0, self.max_delay)
        self.schedule_log.append((txn, site, delay))
        self.system.kernel.schedule(delay, lambda: self._fire(key))

    def _fire(self, key: Tuple[TxnId, str]) -> None:
        txn, site = key
        if abort_current_incarnation(self.system, txn, site):
            self._aborts[key] = self._aborts.get(key, 0) + 1
            self.injected += 1
            # The resubmitted incarnation may fail again, up to the cap.
            self._maybe_schedule(txn, site)


def inject_site_crash(
    system: MultidatabaseSystem, site: str, at: float
) -> None:
    """Crash ``site`` at simulated time ``at`` (collective abort).

    Every transaction active at the LDBS — global subtransactions in
    any phase and local transactions alike — is unilaterally aborted;
    prepared global subtransactions are later repaired by their agents'
    resubmission machinery.
    """
    system.kernel.schedule_at(at, lambda: system.ltm(site).crash())


@dataclass
class PeriodicCrashInjector:
    """Crash a random site every ``period`` (plus jitter), ``count`` times."""

    system: MultidatabaseSystem
    period: float
    count: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.crashes: Dict[str, int] = {}
        self._remaining = self.count
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        delay = self.period * (0.5 + self._rng.random())
        self.system.kernel.schedule(delay, self._fire)

    def _fire(self) -> None:
        site = self._rng.choice(list(self.system.config.sites))
        self.system.ltm(site).crash()
        self.crashes[site] = self.crashes.get(site, 0) + 1
        self._schedule_next()


# ----------------------------------------------------------------------
# Agent crash injection (the durability subsystem's failure mode)
# ----------------------------------------------------------------------


@dataclass
class AgentCrashInjector:
    """Kill one site's 2PC Agent at a scripted protocol point.

    Unlike :func:`inject_site_crash` (the *LDBS* dies and the agent
    repairs it by resubmission), this kills the *agent process itself*
    — the failure the durable Agent log exists for.  ``point`` is one
    of :data:`repro.core.agent.CRASH_POINTS`; the probe fires on the
    first transaction to reach it (or on ``txn`` specifically) and the
    agent restarts from its log ``restart_after`` later
    (``None`` = stay down until :meth:`recover` is called).
    """

    system: MultidatabaseSystem
    site: str
    point: str
    txn: Optional[TxnId] = None
    restart_after: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ConfigError(
                f"unknown crash point {self.point!r}; pick one of {CRASH_POINTS}"
            )
        #: ``(time, point, txn)`` once the probe has fired.
        self.fired: Optional[Tuple[float, str, TxnId]] = None
        #: Transactions the restart recovered (None until it happened).
        self.recovered_txns: Optional[int] = None
        self.system.agent(self.site).crash_probe = self._probe

    def _probe(self, point: str, txn: TxnId) -> bool:
        if self.fired is not None:
            return False
        if point != self.point:
            return False
        if self.txn is not None and txn != self.txn:
            return False
        self.fired = (self.system.kernel.now, point, txn)
        if self.restart_after is not None:
            self.system.kernel.schedule(self.restart_after, self.recover)
        return True

    def recover(self) -> int:
        """Restart the crashed agent now (re-opens the durable log)."""
        self.recovered_txns = self.system.recover_agent(self.site)
        return self.recovered_txns


@dataclass
class RandomAgentCrashInjector:
    """Seeded random agent kills at protocol points, with auto-restart.

    Every time any agent passes a crash point, a seeded coin decides
    whether the process dies there; a dead agent restarts from its log
    a uniform random downtime later.  At most ``max_crashes_per_site``
    kills hit one site, bounding the injected chaos the way the TW
    assumption bounds unilateral aborts.  Same seed ⇒ identical crash
    schedule (``crash_log``).
    """

    system: MultidatabaseSystem
    probability: float
    min_downtime: float = 5.0
    max_downtime: float = 60.0
    max_crashes_per_site: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.crashes: Dict[str, int] = {}
        #: ``(time, site, point, txn)`` per kill, in kill order.
        self.crash_log: List[Tuple[float, str, str, TxnId]] = []
        for site in self.system.config.sites:
            self.system.agent(site).crash_probe = self._probe_for(site)

    def _probe_for(self, site: str):
        def probe(point: str, txn: TxnId) -> bool:
            if self.crashes.get(site, 0) >= self.max_crashes_per_site:
                return False
            if self._rng.random() >= self.probability:
                return False
            self.crashes[site] = self.crashes.get(site, 0) + 1
            self.crash_log.append(
                (self.system.kernel.now, site, point, txn)
            )
            downtime = self._rng.uniform(self.min_downtime, self.max_downtime)
            self.system.kernel.schedule(
                downtime, lambda: self.system.recover_agent(site)
            )
            return True

        return probe
