"""Unilateral-abort injection (the paper's failure model).

"Preserving D- and E-autonomy of an LDBS means that it can roll back a
single transaction at any time ... even after all the database commands
have been executed.  The reasons are various implementation-dependent
issues, like the log buffer overflow (INGRES), or unexpected system
bugs."

Two styles of injection:

* **scripted** — the paper's worked histories need a specific abort at
  a specific moment (e.g. H1's ``A^a_10`` *after* the global commit
  decision ``C_1``).  :func:`inject_abort_after_global_commit` and
  :func:`inject_abort_after_prepare` watch the history recorder and
  fire once, deterministically;
* **randomized** — :class:`RandomFailureInjector` flips a seeded coin
  whenever a subtransaction enters the prepared state and schedules an
  abort a random delay later, bounded per subtransaction (the TW
  assumption: after a fixed number of resubmissions the subtransaction
  can commit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import TxnId
from repro.core.agent import CRASH_POINTS, AgentPhase
from repro.core.coordinator import CoordinatorTimeouts
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.invariants import (
    Violation,
    check_atomic_commitment,
    check_correctness_invariant,
)
from repro.history.model import OpKind, Operation
from repro.net.failure_detector import FailureDetectorConfig
from repro.net.faults import FaultPlan, LossBurst, Partition
from repro.net.reliable import ReliableConfig


def abort_current_incarnation(
    system: MultidatabaseSystem, txn: TxnId, site: str
) -> bool:
    """Unilaterally abort whatever incarnation of ``txn`` currently
    exists at ``site`` (False when it already terminated)."""
    incarnation = system.agent(site).current_incarnation(txn)
    if incarnation is None:
        return False
    return system.ltm(site).unilaterally_abort(incarnation)


def inject_abort_after_global_commit(
    system: MultidatabaseSystem, txn: TxnId, site: str, delay: float = 1.0
) -> None:
    """Arrange ``A^site`` of ``txn`` shortly after ``C_txn`` is recorded.

    This is the H1/H2 pattern: the Coordinator has durably decided to
    commit, every participant voted READY, and *then* the LDBS throws
    the prepared subtransaction away — the exact window the 2PC Agent's
    resubmission exists for.
    """

    def observer(op: Operation) -> None:
        if op.kind is OpKind.GLOBAL_COMMIT and op.txn == txn:
            system.kernel.schedule(
                delay, lambda: abort_current_incarnation(system, txn, site)
            )

    system.history.subscribe(observer)


def inject_abort_after_prepare(
    system: MultidatabaseSystem, txn: TxnId, site: str, delay: float = 1.0
) -> None:
    """Arrange a unilateral abort shortly after ``P^site_txn``."""

    def observer(op: Operation) -> None:
        if op.kind is OpKind.PREPARE and op.txn == txn and op.site == site:
            system.kernel.schedule(
                delay, lambda: abort_current_incarnation(system, txn, site)
            )

    system.history.subscribe(observer)


@dataclass
class RandomFailureInjector:
    """Seeded random unilateral aborts of prepared subtransactions.

    ``probability`` is the chance that one (txn, site) prepared
    subtransaction suffers an abort; when it does, the abort lands a
    uniform random delay in ``[0, max_delay]`` after the prepare.  At
    most ``max_aborts_per_subtxn`` aborts hit any one (txn, site) pair,
    honouring the paper's TW (trustworthiness) assumption.
    """

    system: MultidatabaseSystem
    probability: float
    max_delay: float = 40.0
    max_aborts_per_subtxn: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._aborts: Dict[Tuple[TxnId, str], int] = {}
        self.injected = 0
        #: Every scheduling decision, in decision order — the abort
        #: schedule.  Two injectors with the same seed over the same
        #: workload produce identical logs (determinism contract).
        self.schedule_log: List[Tuple[TxnId, str, float]] = []
        self.system.history.subscribe(self._observe)

    def _observe(self, op: Operation) -> None:
        if op.kind is not OpKind.PREPARE or op.site is None:
            return
        self._maybe_schedule(op.txn, op.site)

    def _maybe_schedule(self, txn: TxnId, site: str) -> None:
        key = (txn, site)
        if self._aborts.get(key, 0) >= self.max_aborts_per_subtxn:
            return
        if self._rng.random() >= self.probability:
            return
        delay = self._rng.uniform(0.0, self.max_delay)
        self.schedule_log.append((txn, site, delay))
        self.system.kernel.schedule(delay, lambda: self._fire(key))

    def _fire(self, key: Tuple[TxnId, str]) -> None:
        txn, site = key
        if abort_current_incarnation(self.system, txn, site):
            self._aborts[key] = self._aborts.get(key, 0) + 1
            self.injected += 1
            # The resubmitted incarnation may fail again, up to the cap.
            self._maybe_schedule(txn, site)


def inject_site_crash(
    system: MultidatabaseSystem, site: str, at: float
) -> None:
    """Crash ``site`` at simulated time ``at`` (collective abort).

    Every transaction active at the LDBS — global subtransactions in
    any phase and local transactions alike — is unilaterally aborted;
    prepared global subtransactions are later repaired by their agents'
    resubmission machinery.
    """
    system.kernel.schedule_at(at, lambda: system.ltm(site).crash())


@dataclass
class PeriodicCrashInjector:
    """Crash a random site every ``period`` (plus jitter), ``count`` times."""

    system: MultidatabaseSystem
    period: float
    count: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.crashes: Dict[str, int] = {}
        self._remaining = self.count
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._remaining <= 0:
            return
        self._remaining -= 1
        delay = self.period * (0.5 + self._rng.random())
        self.system.kernel.schedule(delay, self._fire)

    def _fire(self) -> None:
        site = self._rng.choice(list(self.system.config.sites))
        self.system.ltm(site).crash()
        self.crashes[site] = self.crashes.get(site, 0) + 1
        self._schedule_next()


# ----------------------------------------------------------------------
# Agent crash injection (the durability subsystem's failure mode)
# ----------------------------------------------------------------------


@dataclass
class AgentCrashInjector:
    """Kill one site's 2PC Agent at a scripted protocol point.

    Unlike :func:`inject_site_crash` (the *LDBS* dies and the agent
    repairs it by resubmission), this kills the *agent process itself*
    — the failure the durable Agent log exists for.  ``point`` is one
    of :data:`repro.core.agent.CRASH_POINTS`; the probe fires on the
    first transaction to reach it (or on ``txn`` specifically) and the
    agent restarts from its log ``restart_after`` later
    (``None`` = stay down until :meth:`recover` is called).
    """

    system: MultidatabaseSystem
    site: str
    point: str
    txn: Optional[TxnId] = None
    restart_after: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ConfigError(
                f"unknown crash point {self.point!r}; pick one of {CRASH_POINTS}"
            )
        #: ``(time, point, txn)`` once the probe has fired.
        self.fired: Optional[Tuple[float, str, TxnId]] = None
        #: Transactions the restart recovered (None until it happened).
        self.recovered_txns: Optional[int] = None
        self.system.agent(self.site).crash_probe = self._probe

    def _probe(self, point: str, txn: TxnId) -> bool:
        if self.fired is not None:
            return False
        if point != self.point:
            return False
        if self.txn is not None and txn != self.txn:
            return False
        self.fired = (self.system.kernel.now, point, txn)
        if self.restart_after is not None:
            self.system.kernel.schedule(self.restart_after, self.recover)
        return True

    def recover(self) -> int:
        """Restart the crashed agent now (re-opens the durable log)."""
        self.recovered_txns = self.system.recover_agent(self.site)
        return self.recovered_txns


@dataclass
class RandomAgentCrashInjector:
    """Seeded random agent kills at protocol points, with auto-restart.

    Every time any agent passes a crash point, a seeded coin decides
    whether the process dies there; a dead agent restarts from its log
    a uniform random downtime later.  At most ``max_crashes_per_site``
    kills hit one site, bounding the injected chaos the way the TW
    assumption bounds unilateral aborts.  Same seed ⇒ identical crash
    schedule (``crash_log``).
    """

    system: MultidatabaseSystem
    probability: float
    min_downtime: float = 5.0
    max_downtime: float = 60.0
    max_crashes_per_site: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self.crashes: Dict[str, int] = {}
        #: ``(time, site, point, txn)`` per kill, in kill order.
        self.crash_log: List[Tuple[float, str, str, TxnId]] = []
        for site in self.system.config.sites:
            self.system.agent(site).crash_probe = self._probe_for(site)

    def _probe_for(self, site: str):
        def probe(point: str, txn: TxnId) -> bool:
            if self.crashes.get(site, 0) >= self.max_crashes_per_site:
                return False
            if self._rng.random() >= self.probability:
                return False
            self.crashes[site] = self.crashes.get(site, 0) + 1
            self.crash_log.append(
                (self.system.kernel.now, site, point, txn)
            )
            downtime = self._rng.uniform(self.min_downtime, self.max_downtime)
            self.system.kernel.schedule(
                downtime, lambda: self.system.recover_agent(site)
            )
            return True

        return probe


# ----------------------------------------------------------------------
# The chaos nemesis: one seeded schedule composing every fault source
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded nemesis run: faults, workload, and the heal boundary.

    The run has two phases.  During ``[0, duration)`` the nemesis is
    active: the wire loses/duplicates/delays messages, partitions open
    and close, and agent processes are killed at protocol crash points.
    At ``duration`` everything heals — the fault plan's ``heal_at``
    cuts the wire faults off, crashed agents are recovered — and the
    system drains to quiescence over a perfect transport, after which
    the invariant battery runs.
    """

    seed: int = 0
    duration: float = 3_000.0
    sites: Tuple[str, ...] = ("a", "b", "c")
    n_global: int = 30
    n_local: int = 6
    #: Baseline wire faults (active until ``duration``).
    loss: float = 0.02
    duplication: float = 0.04
    spike_probability: float = 0.03
    spike_delay: float = 60.0
    #: Timed partitions: each isolates one random site for a random
    #: window inside the nemesis phase.
    n_partitions: int = 2
    partition_min: float = 150.0
    partition_max: float = 400.0
    #: Loss bursts layered on top of the baseline loss.
    n_bursts: int = 1
    burst_loss: float = 0.35
    burst_duration: float = 250.0
    #: Agent process kills at protocol crash points (PR 2 machinery).
    crash_probability: float = 0.03
    max_crashes_per_site: int = 1
    #: Extra simulated time allowed for the post-heal drain.
    drain: float = 30_000.0
    #: Optional WAL root; when set the run uses real on-disk logs and
    #: the battery includes a WAL scan.
    durability_root: Optional[str] = None


@dataclass
class ChaosResult:
    """What one nemesis run did and whether the invariants held."""

    seed: int
    schedule_description: str
    committed: int = 0
    aborted: int = 0
    coordinator_deaths: int = 0
    #: Fault/session counters for the "did the run actually exercise
    #: loss, duplication, a partition and a crash" assertion.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Structured invariant violations (:class:`Violation` — stringify
    #: for prose, ``to_dict`` for JSON); empty = the run is clean.
    violations: List[Violation] = field(default_factory=list)
    sim_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"seed {self.seed}: committed={self.committed} "
            f"aborted={self.aborted} sim_time={self.sim_time:.0f}",
            "fault schedule:",
            *(
                "  " + line
                for line in self.schedule_description.splitlines()
            ),
            "counters: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items())),
        ]
        if self.violations:
            lines.append("VIOLATIONS:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("invariants: all hold")
        return "\n".join(lines)


def build_fault_plan(config: ChaosConfig) -> FaultPlan:
    """Derive the seeded wire-fault schedule from a :class:`ChaosConfig`."""
    rng = random.Random(config.seed * 7919 + 17)
    window_start = 0.1 * config.duration
    window_end = 0.9 * config.duration
    partitions = []
    for _ in range(config.n_partitions):
        site = rng.choice(config.sites)
        length = rng.uniform(config.partition_min, config.partition_max)
        start = rng.uniform(window_start, max(window_start, window_end - length))
        partitions.append(
            Partition(
                isolated=frozenset({site}),
                start=start,
                end=min(start + length, config.duration),
            )
        )
    bursts = []
    for _ in range(config.n_bursts):
        start = rng.uniform(
            window_start, max(window_start, window_end - config.burst_duration)
        )
        bursts.append(
            LossBurst(
                start=start,
                end=min(start + config.burst_duration, config.duration),
                loss=config.burst_loss,
            )
        )
    return FaultPlan(
        loss=config.loss,
        duplication=config.duplication,
        spike_probability=config.spike_probability,
        spike_delay=config.spike_delay,
        partitions=tuple(sorted(partitions, key=lambda p: p.start)),
        bursts=tuple(sorted(bursts, key=lambda b: b.start)),
        heal_at=config.duration,
    )


def build_chaos_system(
    config: ChaosConfig, plan: Optional[FaultPlan] = None
) -> MultidatabaseSystem:
    """Wire one system with the full fault stack enabled."""
    durability = None
    if config.durability_root is not None:
        from repro.durability.config import DurabilityConfig

        durability = DurabilityConfig(root=config.durability_root)
    return MultidatabaseSystem(
        SystemConfig(
            sites=config.sites,
            n_coordinators=2,
            seed=config.seed,
            faults=plan if plan is not None else build_fault_plan(config),
            reliable=ReliableConfig(seed=config.seed),
            failure_detector=FailureDetectorConfig(stop_at=config.duration),
            # Generous budgets: a partition must look like latency to the
            # decision delivery, not kill the coordinator process.
            coordinator_timeouts=CoordinatorTimeouts(
                result_timeout=500.0,
                vote_timeout=500.0,
                ack_timeout=120.0,
                max_resends=400,
            ),
            durability=durability,
        )
    )


def invariant_battery(
    system: MultidatabaseSystem,
    durability_root: Optional[str] = None,
    include_ci: bool = False,
) -> List[Violation]:
    """The full post-run oracle, shared by chaos, overload and explore.

    Runs over a (hopefully quiesced) system: atomic commitment across
    sites, the orphaned-PREPARED scan, the serializability/rigor audit,
    and — when the run used real WALs — a recoverability scan of every
    surviving log directory.  ``include_ci`` adds the paper's
    Correctness Invariant checker; the schedule explorer wants it, the
    chaos drills historically asserted it separately.
    """
    from repro.sim.metrics import audit

    violations: List[Violation] = []

    for v in check_atomic_commitment(system.history):
        violations.append(v.to_violation())

    if include_ci:
        for ci in check_correctness_invariant(system.history):
            violations.append(ci.to_violation())

    for site in system.config.sites:
        agent = system.agent(site)
        orphans = sorted(
            str(state.txn)
            for state in agent._txns.values()
            if state.phase is AgentPhase.PREPARED
        )
        if orphans:
            violations.append(
                Violation(
                    kind="orphaned-prepared",
                    detail=f"orphaned prepared subtransactions at {site}: {orphans}",
                    txns=tuple(orphans),
                    sites=(site,),
                )
            )

    report = audit(system)
    if report.view_serializability.serializable is False:
        violations.append(
            Violation(
                kind="audit.viewser",
                detail=(
                    f"C(H) not view serializable: "
                    f"{report.view_serializability.reason}"
                ),
            )
        )
    if report.rigor_violations:
        violations.append(
            Violation(
                kind="audit.rigor",
                detail=f"{report.rigor_violations} rigor violations in local histories",
                context={"count": report.rigor_violations},
            )
        )
    if report.distortions.has_global_distortion:
        violations.append(
            Violation(
                kind="audit.distortion",
                detail="global view distortion detected",
            )
        )

    if durability_root is not None:
        violations.extend(wal_battery(durability_root))
    return violations


def wal_battery(durability_root: str) -> List[Violation]:
    """Recoverability scan over every surviving WAL directory.

    Separate from :func:`invariant_battery` because it must run *after*
    ``system.close()`` — open segment files are not scannable state.
    """
    from repro.durability.cli import wal_directories
    from repro.durability.recovery import scan_wal

    violations: List[Violation] = []
    for directory in wal_directories(durability_root):
        report_wal = scan_wal(directory)
        if not report_wal.clean:
            violations.append(
                Violation(
                    kind="wal",
                    detail=(
                        f"WAL not recoverable: {directory}: "
                        f"{report_wal.summary()}"
                    ),
                    context={"directory": str(directory)},
                )
            )
    return violations


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """One full nemesis run: chaos phase, heal, drain, invariant battery."""
    from repro.sim.metrics import collect_metrics
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    plan = build_fault_plan(config)
    system = build_chaos_system(config, plan)
    result = ChaosResult(seed=config.seed, schedule_description=plan.describe())

    crasher = RandomAgentCrashInjector(
        system,
        probability=config.crash_probability,
        max_crashes_per_site=config.max_crashes_per_site,
        min_downtime=50.0,
        max_downtime=400.0,
        seed=config.seed * 31 + 5,
    )

    # Submissions land inside the first ~60% of the nemesis window so
    # 2PC exchanges actually overlap the faults.
    workload = WorkloadGenerator(
        WorkloadConfig(
            sites=config.sites,
            n_global=config.n_global,
            n_local=config.n_local,
            mean_interarrival=(0.6 * config.duration) / max(config.n_global, 1),
            seed=config.seed,
        )
    ).generate()
    for site, tables in workload.initial_data.items():
        for table, rows in tables.items():
            system.load(site, table, rows)

    outcomes = {}

    def submit_global(entry) -> None:
        completion = system.submit(entry.spec)

        def done(event) -> None:
            if event.error is not None:
                # A coordinator process died (e.g. the resend budget ran
                # out against a never-healing site).  Under chaos that is
                # a *recorded* outcome, not a harness crash — the
                # invariant battery decides whether it broke safety.
                result.coordinator_deaths += 1
                return
            outcomes[entry.spec.txn] = event.value

        completion.subscribe(done)

    for entry in workload.globals_:
        system.kernel.schedule(entry.at, lambda e=entry: submit_global(e))

    def submit_local(entry) -> None:
        system.submit_local(
            entry.site,
            entry.commands,
            number=entry.number,
            think_time=entry.think_time,
        )

    for entry in workload.locals_:
        system.kernel.schedule(entry.at, lambda e=entry: submit_local(e))

    # -- phase 1: nemesis ----------------------------------------------
    system.run(until=config.duration)

    # -- heal: wire faults expired (heal_at), now revive the processes --
    if system.failure_detector is not None:
        system.failure_detector.stop()
    for site in config.sites:
        if system.agent(site).crashed:
            system.recover_agent(site)

    # -- phase 2: drain to quiescence over the healed wire --------------
    system.run(until=config.duration + config.drain, advance=False)
    if system.kernel.pending:
        result.violations.append(
            Violation(
                kind="quiesce",
                detail=(
                    f"run did not quiesce within drain budget "
                    f"({system.kernel.pending} events pending)"
                ),
                context={"pending": system.kernel.pending},
            )
        )

    # -- invariant battery ---------------------------------------------
    result.committed = sum(1 for o in outcomes.values() if o.committed)
    result.aborted = sum(1 for o in outcomes.values() if not o.committed)
    result.sim_time = system.kernel.now

    result.violations.extend(invariant_battery(system))
    system.close()
    if config.durability_root is not None:
        result.violations.extend(wal_battery(config.durability_root))

    metrics = collect_metrics(system)
    result.counters = {
        "messages_lost": metrics.messages_lost,
        "messages_duplicated": metrics.messages_duplicated,
        "messages_spiked": metrics.messages_spiked,
        "partition_drops": metrics.partition_drops,
        "retransmits": metrics.retransmits,
        "dups_dropped": metrics.dups_dropped,
        "session_resets": metrics.session_resets,
        "agent_crashes": metrics.agent_crashes,
        "agent_restarts": metrics.agent_restarts,
        "quarantine_refusals": metrics.quarantine_refusals,
        "dead_letters": metrics.dead_letters,
        "coordinator_deaths": result.coordinator_deaths,
        "crash_injections": len(crasher.crash_log),
    }
    return result
