"""Simulation driver, failure injection, metrics and reporting (S21).

* :mod:`repro.sim.failures` — scripted and randomized unilateral-abort
  injection (the paper's failure model: an LDBS may roll back any
  transaction at any time, even after all commands executed);
* :mod:`repro.sim.driver` — runs a workload schedule against a built
  system, collects outcomes and enforces quiescence;
* :mod:`repro.sim.metrics` — aggregate counters and the correctness
  audit (view serializability of C(H), rigorousness, distortions);
* :mod:`repro.sim.report` — plain-text table rendering for benchmarks.
"""

from repro.sim.driver import SimulationResult, run_schedule
from repro.sim.failures import (
    RandomFailureInjector,
    abort_current_incarnation,
    inject_abort_after_global_commit,
    inject_abort_after_prepare,
)
from repro.sim.metrics import CorrectnessAudit, SystemMetrics, audit, collect_metrics

__all__ = [
    "CorrectnessAudit",
    "RandomFailureInjector",
    "SimulationResult",
    "SystemMetrics",
    "abort_current_incarnation",
    "audit",
    "collect_metrics",
    "inject_abort_after_global_commit",
    "inject_abort_after_prepare",
    "run_schedule",
]
