"""Self-contained performance harness (``python -m repro bench``).

Measures the substrate hot paths with nothing but the standard library
(``time.perf_counter`` + repeat-and-take-best), so it runs anywhere the
package imports — no pytest-benchmark required — and writes two
machine-readable artifacts:

* ``BENCH_kernel.json`` — micro-benchmarks of the event kernel, lock
  manager and history analyzers (op/s and wall time per hot path);
* ``BENCH_e2e.json`` — end-to-end driven workloads (wall time, kernel
  events/s, commit counts).

Every artifact embeds the seed-revision baseline captured on the same
class of machine, so any future PR can diff its numbers against the
recorded trajectory.  Schema documented in ``docs/PERF.md``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

SCHEMA = "repro-bench/v1"

#: Seed-revision numbers (pytest-benchmark ``min`` of the corresponding
#: micro-benchmark, captured on the machine that produced this PR).
#: Kept as the anchor of the perf trajectory: op/s are comparable
#: across revisions on similar hardware, ratios are comparable anywhere.
SEED_BASELINE: Dict[str, Dict[str, float]] = {
    "kernel_schedule_fire": {"iterations": 10_000, "best_wall_s": 0.025709},
    "lock_acquire_release": {"iterations": 1_000, "best_wall_s": 0.0056194},
    "viewser_check": {"iterations": 1, "best_wall_s": 0.0004635},
    "full_2pc_round_trip": {"iterations": 1, "best_wall_s": 0.00031139},
    "workload_2cm_30txn": {"iterations": 30, "best_wall_s": 0.0152134},
}


@dataclass
class BenchResult:
    name: str
    iterations: int
    repeats: int
    best_wall_s: float
    mean_wall_s: float

    @property
    def ops_per_s(self) -> float:
        return self.iterations / self.best_wall_s if self.best_wall_s else 0.0

    def to_json(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "iterations": self.iterations,
            "repeats": self.repeats,
            "best_wall_s": self.best_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "ops_per_s": self.ops_per_s,
        }
        baseline = SEED_BASELINE.get(self.name)
        if baseline:
            base_rate = baseline["iterations"] / baseline["best_wall_s"]
            row["seed_ops_per_s"] = base_rate
            row["speedup_vs_seed"] = self.ops_per_s / base_rate
        return row


def _measure(
    name: str, fn: Callable[[], object], iterations: int, repeats: int
) -> BenchResult:
    """Run ``fn`` ``repeats`` times; report best and mean wall time."""
    fn()  # warm-up (imports, allocator, caches)
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return BenchResult(
        name=name,
        iterations=iterations,
        repeats=repeats,
        best_wall_s=min(samples),
        mean_wall_s=sum(samples) / len(samples),
    )


# ----------------------------------------------------------------------
# Kernel / lock / analyzer micro-benchmarks
# ----------------------------------------------------------------------


def _bench_kernel_schedule_fire() -> int:
    from repro.kernel import EventKernel

    kernel = EventKernel()
    noop = _noop
    for i in range(10_000):
        kernel.schedule(float(i % 97), noop)
    kernel.run()
    return kernel.events_fired


def _noop() -> None:
    return None


def _bench_kernel_pending_poll() -> int:
    from repro.kernel import EventKernel

    kernel = EventKernel()
    for i in range(10_000):
        kernel.schedule(float(i), _noop)
    total = 0
    for _ in range(100_000):
        total += kernel.pending
    kernel.run()
    return total


def _bench_kernel_cancel_compact() -> int:
    from repro.kernel import EventKernel

    kernel = EventKernel()
    handles = [kernel.schedule(float(i % 53), _noop) for i in range(20_000)]
    for i, handle in enumerate(handles):
        if i % 4:  # cancel 75% — forces repeated tombstone compaction
            handle.cancel()
    kernel.run()
    return kernel.events_fired


def _bench_timer_restart_churn() -> int:
    from repro.kernel import EventKernel, Timer

    kernel = EventKernel()
    fired = [0]
    timer = Timer(kernel, 10.0, lambda: fired.__setitem__(0, fired[0] + 1))
    timer.start()
    for _ in range(10_000):
        kernel.schedule(0.001, timer.restart)
        kernel.run(max_events=1)
    timer.cancel()
    kernel.run()
    return fired[0]


def _bench_lock_acquire_release() -> int:
    from repro.common.ids import DataItemId, SubtxnId, global_txn
    from repro.kernel import EventKernel
    from repro.ldbs.locks import LockManager, LockMode

    rows = [("row", DataItemId("t", k)) for k in range(8)]
    owners = [SubtxnId(global_txn(n), "a", 0) for n in range(1, 5)]
    kernel = EventKernel()
    manager = LockManager(kernel)
    for i in range(1_000):
        owner = owners[i % 4]
        manager.acquire(owner, rows[i % 8], LockMode.S)
        if i % 4 == 3:
            manager.release_all(owner)
    for owner in owners:
        manager.release_all(owner)
    kernel.run()
    return manager.grants


def _bench_lock_release_all_wide() -> int:
    """One owner holding 2000 of 10000 known resources, released at once."""
    from repro.common.ids import DataItemId, SubtxnId, global_txn
    from repro.kernel import EventKernel
    from repro.ldbs.locks import LockManager, LockMode

    kernel = EventKernel()
    manager = LockManager(kernel)
    spectators = [SubtxnId(global_txn(n), "a", 0) for n in range(2, 6)]
    for k in range(10_000):  # resources the manager has seen before
        manager.acquire(spectators[k % 4], ("row", DataItemId("t", k)), LockMode.S)
    owner = SubtxnId(global_txn(1), "a", 0)
    for k in range(2_000):
        manager.acquire(owner, ("row", DataItemId("t", k)), LockMode.S)
    manager.release_all(owner)
    kernel.run()
    return manager.grants


def _bench_wait_for_graph() -> int:
    from repro.common.ids import DataItemId, SubtxnId, global_txn
    from repro.kernel import EventKernel
    from repro.ldbs.locks import LockManager, LockMode

    kernel = EventKernel()
    manager = LockManager(kernel)
    # 2000 uncontended resources plus 20 contended ones.
    for k in range(2_000):
        manager.acquire(
            SubtxnId(global_txn(k % 7 + 1), "a", 0),
            ("row", DataItemId("t", k)),
            LockMode.S,
        )
    for k in range(20):
        resource = ("row", DataItemId("hot", k))
        manager.acquire(SubtxnId(global_txn(100 + k), "a", 0), resource, LockMode.X)
        manager.acquire(SubtxnId(global_txn(200 + k), "a", 0), resource, LockMode.X)
    edges = 0
    for _ in range(500):
        graph = manager.wait_for_graph()
        edges += sum(len(blockers) for blockers in graph.values())
    return edges


def _bench_serialization_graph() -> int:
    from repro.history.graphs import serialization_graph

    ops = _synthetic_ops(n_txns=60, ops_per_txn=40, n_items=25)
    graph = None
    for _ in range(20):
        graph = serialization_graph(ops)
    return graph.number_of_edges()


def _synthetic_ops(n_txns: int, ops_per_txn: int, n_items: int):
    from repro.common.ids import DataItemId, SubtxnId, global_txn
    from repro.history.model import OpKind, Operation

    ops = []
    seq = 0
    for t in range(1, n_txns + 1):
        txn = global_txn(t)
        subtxn = SubtxnId(txn, "a", 0)
        for j in range(ops_per_txn):
            kind = OpKind.WRITE if (t + j) % 3 == 0 else OpKind.READ
            item = DataItemId("t", (t * 7 + j) % n_items)
            ops.append(
                Operation(
                    kind=kind,
                    txn=txn,
                    seq=seq,
                    time=float(seq),
                    site="a",
                    subtxn=subtxn,
                    item=item,
                )
            )
            seq += 1
    return ops


def _bench_viewser_check():
    from repro.common.ids import DataItemId, SubtxnId, global_txn
    from repro.history.committed import committed_projection
    from repro.history.model import History
    from repro.history.viewser import check_view_serializable

    # Seven transactions all funnelling through item X (mirrors
    # benchmarks/test_bench_microperf.py::test_bench_viewser_exact_search).
    history = History()
    time = 0.0
    last_writer = None
    x = DataItemId("t", "X")
    for n in range(1, 8):
        sub = SubtxnId(global_txn(n), "a", 0)
        time += 1
        history.record_read(time, sub, "a", x, read_from=last_writer)
        time += 1
        history.record_write(time, sub, "a", DataItemId("t", chr(ord("A") + n)))
        time += 1
        history.record_write(time, sub, "a", x)
        last_writer = sub
        time += 1
        history.record_local_commit(time, sub, "a")
        time += 1
        history.record_global_commit(time, global_txn(n))
    projection = committed_projection(history)
    result = check_view_serializable(projection)
    return result.serializable


def _bench_full_2pc_round_trip() -> bool:
    from repro.common.ids import global_txn
    from repro.core.coordinator import GlobalTransactionSpec
    from repro.core.dtm import MultidatabaseSystem, SystemConfig
    from repro.ldbs.commands import AddValue, UpdateItem

    system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
    system.load("a", "t", {"X": 100})
    system.load("b", "t", {"Z": 10})
    done = system.submit(
        GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("t", "X", AddValue(-1))),
                ("b", UpdateItem("t", "Z", AddValue(1))),
            ),
        )
    )
    system.run()
    return done.value.committed


# ----------------------------------------------------------------------
# Certifier micro-benchmarks (naive vs indexed engines)
# ----------------------------------------------------------------------

#: Table sizes of the certifier ops/s trajectory (ISSUE 6).
CERTIFIER_TABLE_SIZES = (100, 1_000, 10_000)
#: Probes per measurement, scaled down as the table grows so the naive
#: O(table) scan stays affordable; ops/s normalizes the comparison.
_CERTIFIER_CHECKS = {100: 5_000, 1_000: 500, 10_000: 100}


def _certifier_checks_for(size: int) -> int:
    return _CERTIFIER_CHECKS.get(size, max(50, 500_000 // size))


def _build_certifier(engine: str, table_size: int):
    from repro.common.ids import SerialNumber, global_txn
    from repro.core.certifier import Certifier, CertifierConfig
    from repro.core.intervals import AliveInterval

    certifier = Certifier("bench", CertifierConfig(engine=engine))
    for i in range(table_size):
        certifier.insert(
            global_txn(i + 1),
            SerialNumber(float(i + 1), "c1", i),
            AliveInterval(0.0, 1e9),
        )
    return certifier


def _make_certify_prepare_bench(
    engine: str, table_size: int, checks: int
) -> Callable[[], int]:
    """Probe a populated table with intersecting candidates.

    ``certify_prepare`` never mutates the table, so the certifier is
    built once and only the probes are measured.
    """
    state: Dict[str, object] = {}

    def bench() -> int:
        from repro.common.ids import SerialNumber, global_txn
        from repro.core.intervals import AliveInterval

        certifier = state.get("certifier")
        if certifier is None:
            certifier = state["certifier"] = _build_certifier(engine, table_size)
        candidate = AliveInterval(1.0, 2.0)  # intersects every entry
        probe_sn = SerialNumber(float(table_size + 1), "c1", 0)
        base = table_size + 1
        ok = 0
        for i in range(checks):
            decision = certifier.certify_prepare(
                global_txn(base + i), probe_sn, candidate
            )
            ok += decision.ok
        return ok

    return bench


def _make_certify_commit_bench(
    engine: str, table_size: int, checks: int
) -> Callable[[], int]:
    """Commit-certify the minimum-SN pivot: the naive scan must visit
    every other entry before it can say yes."""
    state: Dict[str, object] = {}

    def bench() -> int:
        from repro.common.ids import global_txn

        certifier = state.get("certifier")
        if certifier is None:
            certifier = state["certifier"] = _build_certifier(engine, table_size)
        pivot = global_txn(1)
        ok = 0
        for _ in range(checks):
            ok += certifier.certify_commit(pivot).ok
        return ok

    return bench


def certifier_series(
    sizes=CERTIFIER_TABLE_SIZES, repeats: int = 3
) -> List[Dict[str, object]]:
    """The certifier ops/s trajectory: naive vs indexed at each size."""
    rows: List[Dict[str, object]] = []
    for size in sizes:
        checks = _certifier_checks_for(size)
        for engine in ("naive", "indexed"):
            prepare = _measure(
                f"certify_prepare_{engine}_{size}",
                _make_certify_prepare_bench(engine, size, checks),
                checks,
                repeats,
            )
            commit = _measure(
                f"certify_commit_{engine}_{size}",
                _make_certify_commit_bench(engine, size, checks),
                checks,
                repeats,
            )
            rows.append(
                {
                    "engine": engine,
                    "table_size": size,
                    "checks": checks,
                    "repeats": repeats,
                    "prepare_ops_per_s": prepare.ops_per_s,
                    "prepare_best_wall_s": prepare.best_wall_s,
                    "commit_ops_per_s": commit.ops_per_s,
                    "commit_best_wall_s": commit.best_wall_s,
                }
            )
    return rows


def run_certifier_soak(
    n_txns: int, window: int = 512, engine: str = "indexed"
) -> Dict[str, object]:
    """Windowed certifier soak: ``n_txns`` transactions streamed through
    one certifier with ``window`` entries in flight.

    Every transaction is prepare-certified and inserted; a handful of
    the oldest live intervals are extended each step (alive-check
    churn) and an occasional entry is restarted (resubmission churn,
    exercising the archive with ``max_intervals=2``); once the window
    is full the oldest entry is commit-certified, committed and
    removed.  Returns the decision counts plus the high-water marks
    proving the table — and under the indexed engine the lazy index —
    stayed bounded (the epoch GC acceptance criterion).
    """
    from collections import deque

    from repro.common.ids import SerialNumber, global_txn
    from repro.core.certifier import Certifier, CertifierConfig
    from repro.core.intervals import AliveInterval

    certifier = Certifier(
        "soak", CertifierConfig(engine=engine, max_intervals=2)
    )
    live: deque = deque()
    admitted = refused = committed = 0
    max_table = max_depth = 0
    for i in range(n_txns):
        now = float(i + 1)
        txn = global_txn(i + 1)
        sn = SerialNumber(now, "c1", 0)
        candidate = AliveInterval(0.0, now)
        if certifier.certify_prepare(txn, sn, candidate).ok:
            certifier.insert(txn, sn, candidate)
            live.append(txn)
            admitted += 1
        else:
            refused += 1
        for j in range(min(4, len(live))):
            certifier.extend_interval(live[j], now)
        if i % 97 == 0 and live:
            certifier.restart_interval(live[-1], now)
        if len(live) > window:
            oldest = live.popleft()
            if certifier.certify_commit(oldest).ok:
                certifier.record_local_commit(oldest)
                committed += 1
            certifier.remove(oldest)
        if certifier.table_size() > max_table:
            max_table = certifier.table_size()
        depth = certifier.index_depth()
        if depth > max_depth:
            max_depth = depth
    while live:
        certifier.remove(live.popleft())
    return {
        "window": window,
        "admitted": admitted,
        "refused": refused,
        "committed": committed,
        "max_table_size": max_table,
        "max_index_depth": max_depth,
        "final_index_depth": certifier.index_depth(),
        "gc_compactions": certifier.gc_compactions,
        "gc_reclaimed": certifier.gc_reclaimed,
    }


_KERNEL_BENCHES = [
    ("kernel_schedule_fire", _bench_kernel_schedule_fire, 10_000),
    ("kernel_pending_poll", _bench_kernel_pending_poll, 100_000),
    ("kernel_cancel_compact", _bench_kernel_cancel_compact, 20_000),
    ("timer_restart_churn", _bench_timer_restart_churn, 10_000),
    ("lock_acquire_release", _bench_lock_acquire_release, 1_000),
    ("lock_release_all_wide", _bench_lock_release_all_wide, 2_000),
    ("wait_for_graph", _bench_wait_for_graph, 500),
    ("serialization_graph_build", _bench_serialization_graph, 20),
    ("viewser_check", _bench_viewser_check, 1),
    ("full_2pc_round_trip", _bench_full_2pc_round_trip, 1),
]

# The certifier ops/s trajectory rides in the kernel suite so it lands
# in BENCH_kernel.json on every `python -m repro bench` run.
for _engine in ("naive", "indexed"):
    for _size in CERTIFIER_TABLE_SIZES:
        _checks = _certifier_checks_for(_size)
        _KERNEL_BENCHES.append(
            (
                f"certify_prepare_{_engine}_{_size}",
                _make_certify_prepare_bench(_engine, _size, _checks),
                _checks,
            )
        )
    _KERNEL_BENCHES.append(
        (
            f"certify_commit_{_engine}_10000",
            _make_certify_commit_bench(_engine, 10_000, 100),
            100,
        )
    )
del _engine, _size, _checks


# ----------------------------------------------------------------------
# End-to-end workloads
# ----------------------------------------------------------------------


def _run_workload(method: str, n_global: int, seed: int):
    from repro.core.dtm import MultidatabaseSystem, SystemConfig
    from repro.sim.driver import run_schedule
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    sites = ("a", "b", "c")
    system = MultidatabaseSystem(
        SystemConfig(sites=sites, n_coordinators=2, method=method, seed=seed)
    )
    schedule = WorkloadGenerator(
        WorkloadConfig(sites=sites, n_global=n_global, seed=seed, sites_max=2)
    ).generate()
    result = run_schedule(system, schedule)
    return system, result


_E2E_BENCHES = [
    ("workload_2cm_30txn", "2cm", 30, 1),
    ("workload_2cm_100txn", "2cm", 100, 2),
    ("workload_cgm_50txn", "cgm", 50, 3),
]


def _machine_info() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_kernel_suite(repeats: int = 5) -> List[BenchResult]:
    return [
        _measure(name, fn, iterations, repeats)
        for name, fn, iterations in _KERNEL_BENCHES
    ]


def run_e2e_suite(
    repeats: int = 3, soak_txns: int = 100_000
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for name, method, n_global, seed in _E2E_BENCHES:
        _run_workload(method, n_global, seed)  # warm-up
        samples = []
        fired = committed = 0
        for _ in range(repeats):
            start = time.perf_counter()
            system, result = _run_workload(method, n_global, seed)
            samples.append(time.perf_counter() - start)
            fired = system.kernel.events_fired
            committed = len(result.committed_globals)
        best = min(samples)
        row: Dict[str, object] = {
            "name": name,
            "method": method,
            "n_global": n_global,
            "seed": seed,
            "repeats": repeats,
            "best_wall_s": best,
            "mean_wall_s": sum(samples) / len(samples),
            "kernel_events": fired,
            "events_per_s": fired / best if best else 0.0,
            "txns_per_s": n_global / best if best else 0.0,
            "committed": committed,
        }
        baseline = SEED_BASELINE.get(name)
        if baseline:
            base_rate = baseline["iterations"] / baseline["best_wall_s"]
            row["seed_txns_per_s"] = base_rate
            row["speedup_vs_seed"] = row["txns_per_s"] / base_rate
        rows.append(row)
    if soak_txns:
        # The certifier soak runs once (it is a bound check, not a
        # timing race): the table and index must stay bounded.
        start = time.perf_counter()
        stats = run_certifier_soak(soak_txns)
        wall = time.perf_counter() - start
        rows.append(
            {
                "name": f"certifier_soak_{soak_txns // 1000}k",
                "engine": "indexed",
                "n_txns": soak_txns,
                "repeats": 1,
                "best_wall_s": wall,
                "mean_wall_s": wall,
                "ops_per_s": soak_txns / wall if wall else 0.0,
                "txns_per_s": soak_txns / wall if wall else 0.0,
                **stats,
            }
        )
    return rows


def write_artifacts(
    out_dir: str = ".",
    repeats: int = 5,
    e2e_repeats: int = 3,
    quick: bool = False,
) -> Dict[str, str]:
    """Run both suites and write ``BENCH_kernel.json`` / ``BENCH_e2e.json``.

    Returns ``{kind: path}`` for the written artifacts.  ``quick`` drops
    the repeat counts to 2/1 (CI smoke pass).
    """
    if quick:
        repeats, e2e_repeats = 2, 1
    soak_txns = 10_000 if quick else 100_000
    os.makedirs(out_dir, exist_ok=True)
    written: Dict[str, str] = {}

    kernel_results = run_kernel_suite(repeats=repeats)
    kernel_doc = {
        "schema": SCHEMA,
        "kind": "kernel",
        "created_unix": time.time(),
        "machine": _machine_info(),
        "seed_baseline": SEED_BASELINE,
        "results": [result.to_json() for result in kernel_results],
    }
    path = os.path.join(out_dir, "BENCH_kernel.json")
    with open(path, "w") as handle:
        json.dump(kernel_doc, handle, indent=2)
        handle.write("\n")
    written["kernel"] = path

    e2e_rows = run_e2e_suite(repeats=e2e_repeats, soak_txns=soak_txns)
    e2e_doc = {
        "schema": SCHEMA,
        "kind": "e2e",
        "created_unix": time.time(),
        "machine": _machine_info(),
        "seed_baseline": SEED_BASELINE,
        "results": e2e_rows,
    }
    path = os.path.join(out_dir, "BENCH_e2e.json")
    with open(path, "w") as handle:
        json.dump(e2e_doc, handle, indent=2)
        handle.write("\n")
    written["e2e"] = path
    return written


def render_summary(written: Dict[str, str]) -> str:
    """Human-readable digest of freshly written artifacts."""
    lines: List[str] = []
    for kind in ("kernel", "e2e"):
        path = written.get(kind)
        if path is None:
            continue
        with open(path) as handle:
            doc = json.load(handle)
        lines.append(f"{os.path.basename(path)}:")
        for row in doc["results"]:
            rate = row.get("ops_per_s") or row.get("events_per_s") or 0.0
            speedup = row.get("speedup_vs_seed")
            suffix = f"  ({speedup:.2f}x vs seed)" if speedup else ""
            lines.append(
                f"  {row['name']:<28} {row['best_wall_s'] * 1e3:9.3f} ms"
                f"  {rate:>14,.0f} op/s{suffix}"
            )
    return "\n".join(lines)


def main(out_dir: str = ".", quick: bool = False, repeats: Optional[int] = None) -> int:
    written = write_artifacts(
        out_dir=out_dir,
        repeats=repeats or 5,
        e2e_repeats=max(1, (repeats or 3) // 2) if repeats else 3,
        quick=quick,
    )
    print(render_summary(written))
    for kind, path in sorted(written.items()):
        print(f"wrote {kind}: {path}")
    return 0
