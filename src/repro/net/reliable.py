"""Session layer re-deriving the paper's lossless-FIFO wire contract.

The paper assumes the Network delivers every message, uncorrupted, in
per-channel FIFO order (Sec. 2).  :class:`~repro.net.faults.FaultyNetwork`
breaks all of that; :class:`SessionLayer` rebuilds it on top, the way a
real RDU/agent stack would sit on TCP:

* every tracked message is stamped with an ``(epoch, seq)`` envelope
  per directed channel;
* the receiver delivers strictly in sequence order, buffering
  out-of-order arrivals and dropping duplicates, and returns
  **cumulative acknowledgements** (``ACK`` carries the next sequence
  number it is waiting for);
* the sender retransmits *all* unacknowledged messages (go-back-N) on
  a timer with exponential backoff and seeded jitter;
* the retry budget is bounded: after ``max_retries`` fruitless rounds
  the sender gives up, dead-letters the unacknowledged messages and
  **bumps its epoch**.  The receiver resynchronises on the first
  higher-epoch message, so the channel is usable again instead of
  wedged forever on a hole that will never fill.  (The upper protocol
  — coordinator timeouts, ``resume_in_doubt`` — owns recovery from the
  gap, exactly as it owns recovery from a crashed site.)

Transport-internal kinds (ACK, PING, PONG) ride outside the session:
losing a heartbeat *is the signal* the failure detector exists to
observe, and a lost cumulative ack is repaired by the next one.

The layer presents the same duck-typed ``send``/``register`` surface as
:class:`~repro.net.network.Network`, so coordinators and agents do not
know whether they are talking to the perfect wire or to this layer over
a faulty one.  Anything it does not implement is delegated to the
wrapped network (``trace``, ``pause_channel``, fault counters, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.kernel.events import EventKernel
from repro.net.messages import Message, MsgType
from repro.net.network import Handler, Network

#: Kinds that travel outside the session (no envelope, no retransmit).
UNTRACKED = frozenset({MsgType.ACK, MsgType.PING, MsgType.PONG})


@dataclass(frozen=True)
class ReliableConfig:
    """Tuning knobs for the retransmission machinery."""

    #: Initial retransmission timeout (simulated time units).
    rto: float = 15.0
    #: Multiplicative backoff applied after every fruitless round.
    backoff: float = 2.0
    #: Ceiling on the backed-off timeout.
    max_rto: float = 120.0
    #: Uniform jitter added to every timeout (decorrelates retransmit
    #: storms from many senders at once).
    jitter: float = 2.0
    #: Retransmit rounds without progress before the sender gives up on
    #: the outstanding window and resets the session (epoch bump).
    max_retries: int = 8
    #: Seed for the jitter RNG (independent of latency and fault RNGs).
    seed: int = 0
    #: Bound on the ``dead_letters`` list; oldest entries are evicted
    #: past it and counted in ``dead_letters_dropped``.
    dead_letter_limit: int = 1_000


class _SendState:
    """Per directed channel: the sender's sliding window."""

    __slots__ = ("epoch", "next_seq", "unacked", "timer", "retries", "rto")

    def __init__(self, rto: float) -> None:
        self.epoch = 0
        self.next_seq = 0
        #: seq -> message, insertion-ordered (== sequence-ordered).
        self.unacked: Dict[int, Message] = {}
        self.timer = None
        self.retries = 0
        self.rto = rto


class _RecvState:
    """Per directed channel: the receiver's reassembly cursor."""

    __slots__ = ("epoch", "expected", "buffer")

    def __init__(self) -> None:
        self.epoch = 0
        self.expected = 0
        #: seq -> message parked ahead of the cursor.
        self.buffer: Dict[int, Message] = {}


class SessionLayer:
    """Reliable channels over an unreliable :class:`Network`."""

    def __init__(
        self,
        kernel: EventKernel,
        network: Network,
        config: Optional[ReliableConfig] = None,
    ) -> None:
        self._kernel = kernel
        self._network = network
        self.config = config or ReliableConfig()
        self._rng = random.Random(self.config.seed ^ 0xAC4)
        self._handlers: Dict[str, Handler] = {}
        self._send_states: Dict[Tuple[str, str], _SendState] = {}
        self._recv_states: Dict[Tuple[str, str], _RecvState] = {}
        #: Addresses whose process is currently dead: inbound messages
        #: for them are dropped *before* the session sees them, so the
        #: sender keeps retransmitting until the process is back.
        self._down: Set[str] = set()
        self.retransmits = 0
        self.dups_dropped = 0
        self.acks_sent = 0
        self.out_of_order_buffered = 0
        self.session_resets = 0
        self.dropped_to_down = 0
        #: ``(message, why)`` pairs the sender gave up on.  Bounded like
        #: the network's list (see :meth:`_dead_letter`).
        self.dead_letters: List[Tuple[Message, str]] = []
        self.dead_letters_dropped = 0
        #: Optional observer fired once per dead-lettered message — the
        #: overload layer's circuit breakers feed on it (a channel whose
        #: retry budget keeps dying is a failing site).
        self.on_dead_letter: Optional[Callable[[Message, str], None]] = None

    # ------------------------------------------------------------------
    # Network-compatible surface.

    def register(
        self, address: str, handler: Handler, replace: bool = False
    ) -> None:
        self._network.register(address, self._on_receive, replace=replace)
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)
        self._network.unregister(address)

    def note_endpoint_down(self, address: str) -> None:
        """Deliveries to ``address`` are black-holed (and *not* acked)
        until :meth:`note_endpoint_up` — a dead process cannot ack."""
        self._down.add(address)

    def note_endpoint_up(self, address: str) -> None:
        self._down.discard(address)

    def reset_peer(self, address: str) -> int:
        """The process behind ``address`` restarted: resynchronise.

        A restarted process lost its receiver-side reassembly cursors,
        so retransmissions stamped with the old ``(epoch, seq)`` would
        park in its fresh reorder buffer forever (the new incarnation
        expects ``(0, 0)``).  Bump the send epoch towards ``address``
        and re-stamp + retransmit the whole unacked window under the
        new epoch, in order — the receiver resynchronises on the higher
        epoch and sees every pending message exactly once.  Receive
        state *from* ``address`` is forgotten too: the dead
        incarnation's stream never continues, and its successor opens
        with a fresh epoch of its own.

        Returns the number of send channels reset.  Callers (the
        runtime's :class:`repro.rt.host.ProtocolHost`) must invoke this
        once per detected restart — e.g. keyed on a boot-id change —
        so the epoch bumps exactly once per incarnation.
        """
        reset = 0
        for channel, state in self._send_states.items():
            if channel[1] != address:
                continue
            reset += 1
            state.epoch += 1
            pending = list(state.unacked.values())
            state.unacked.clear()
            state.next_seq = 0
            state.retries = 0
            state.rto = self.config.rto
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            for message in pending:
                message.session = (state.epoch, state.next_seq)
                state.next_seq += 1
                state.unacked[message.session[1]] = message
                try:
                    self._network.send(message)
                except SimulationError as exc:
                    self._dead_letter(message, str(exc))
                    state.unacked.pop(message.session[1], None)
                    continue
                self.retransmits += 1
            self.session_resets += 1
            self._arm_timer(channel, state)
        for channel in [c for c in self._recv_states if c[0] == address]:
            del self._recv_states[channel]
        return reset

    def send(self, message: Message) -> float:
        if message.type in UNTRACKED:
            # Heartbeats and acks take the raw wire: losing them is
            # either the failure signal itself or repaired cumulatively.
            return self._network.send(message)
        channel = (message.src, message.dst)
        state = self._send_states.get(channel)
        if state is None:
            state = self._send_states[channel] = _SendState(self.config.rto)
        message.session = (state.epoch, state.next_seq)
        state.next_seq += 1
        state.unacked[message.session[1]] = message
        delivery = self._network.send(message)
        self._arm_timer(channel, state)
        return delivery

    def __getattr__(self, name: str):
        # Everything else (trace, counters, pause_channel, ...) belongs
        # to the wrapped network.
        return getattr(self._network, name)

    # ------------------------------------------------------------------
    # Sender side.

    def _arm_timer(self, channel: Tuple[str, str], state: _SendState) -> None:
        if state.timer is not None or not state.unacked:
            return
        delay = state.rto + self._rng.uniform(0.0, self.config.jitter)
        state.timer = self._kernel.schedule(
            delay, lambda: self._on_timeout(channel)
        )

    def _on_timeout(self, channel: Tuple[str, str]) -> None:
        state = self._send_states.get(channel)
        if state is None:
            return
        state.timer = None
        if not state.unacked:
            state.retries = 0
            state.rto = self.config.rto
            return
        state.retries += 1
        if state.retries > self.config.max_retries:
            self._give_up(channel, state)
            return
        for message in list(state.unacked.values()):
            try:
                self._network.send(message)
            except SimulationError as exc:
                # Endpoint unregistered since the original send: the
                # window can never drain, give up on it now.
                self._dead_letter(message, str(exc))
                state.unacked.pop(message.session[1], None)
                continue
            self.retransmits += 1
        state.rto = min(state.rto * self.config.backoff, self.config.max_rto)
        self._arm_timer(channel, state)

    def _give_up(self, channel: Tuple[str, str], state: _SendState) -> None:
        """Retry budget exhausted: abandon the window, reset the session.

        Without the epoch bump the receiver would wait forever for the
        abandoned head-of-line sequence number and every later message
        on the channel would park in its reorder buffer — a wedged
        channel.  The bump tells it to resynchronise instead; the
        abandoned messages surface in :attr:`dead_letters` and the upper
        protocol's timeouts handle their loss.
        """
        for message in state.unacked.values():
            self._dead_letter(
                message, f"retry budget exhausted towards {channel[1]!r}"
            )
        state.unacked.clear()
        state.epoch += 1
        state.next_seq = 0
        state.retries = 0
        state.rto = self.config.rto
        self.session_resets += 1

    def _dead_letter(self, message: Message, why: str) -> None:
        """Record an abandoned message (bounded list) and notify."""
        self.dead_letters.append((message, why))
        while len(self.dead_letters) > self.config.dead_letter_limit:
            del self.dead_letters[0]
            self.dead_letters_dropped += 1
        if self.on_dead_letter is not None:
            self.on_dead_letter(message, why)

    def _on_ack(self, message: Message) -> None:
        epoch, cumulative = message.payload
        # The ack's source is the receiver; the window it acknowledges
        # is ours towards it.
        channel = (message.dst, message.src)
        state = self._send_states.get(channel)
        if state is None or epoch != state.epoch:
            return
        progressed = False
        for seq in [s for s in state.unacked if s < cumulative]:
            del state.unacked[seq]
            progressed = True
        if progressed:
            state.retries = 0
            state.rto = self.config.rto
            # Restart the timer: the clock must measure the *oldest
            # outstanding* message, not the first send on the channel —
            # otherwise a busy channel retransmits traffic younger than
            # one round trip every rto.
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            self._arm_timer(channel, state)
        if not state.unacked and state.timer is not None:
            state.timer.cancel()
            state.timer = None

    # ------------------------------------------------------------------
    # Receiver side.

    def _on_receive(self, message: Message) -> None:
        if message.type is MsgType.ACK:
            self._on_ack(message)
            return
        if message.dst in self._down:
            # The process is dead: a real host would drop the packet on
            # the floor.  Crucially we must NOT ack it — the sender has
            # to keep retransmitting until the process recovers.
            self.dropped_to_down += 1
            return
        handler = self._handlers.get(message.dst)
        if handler is None:
            return
        if message.type in UNTRACKED or message.session is None:
            # Heartbeats, or a peer sending outside the session.
            handler(message)
            return
        epoch, seq = message.session
        channel = (message.src, message.dst)
        state = self._recv_states.get(channel)
        if state is None:
            state = self._recv_states[channel] = _RecvState()
        if epoch > state.epoch:
            # The sender gave up on an old window and reset; adopt its
            # new session and resynchronise the cursor on this message.
            state.epoch = epoch
            state.expected = seq
            state.buffer.clear()
        elif epoch < state.epoch:
            self.dups_dropped += 1
            return
        if seq < state.expected:
            # Duplicate (retransmit raced the ack, or the wire copied
            # it).  Re-ack so the sender's window can drain.
            self.dups_dropped += 1
            self._ack(channel, state)
            return
        if seq > state.expected:
            if seq in state.buffer:
                self.dups_dropped += 1
            else:
                state.buffer[seq] = message
                self.out_of_order_buffered += 1
            self._ack(channel, state)
            return
        # In order: deliver, then drain whatever it unblocked.
        handler(message)
        state.expected += 1
        while state.expected in state.buffer:
            parked = state.buffer.pop(state.expected)
            state.expected += 1
            handler(parked)
        self._ack(channel, state)

    def _ack(self, channel: Tuple[str, str], state: _RecvState) -> None:
        src, dst = channel
        ack = Message(
            MsgType.ACK,
            src=dst,
            dst=src,
            txn=None,
            payload=(state.epoch, state.expected),
        )
        try:
            self._network.send(ack)
        except SimulationError:
            return  # Sender endpoint gone; nothing to acknowledge to.
        self.acks_sent += 1
