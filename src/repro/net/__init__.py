"""2PC messages and the simulated network (system S2 in DESIGN.md).

The paper assumes messages "are not corrupted, lost or out of order";
the :class:`Network` honours that per channel (FIFO between one sender
and one receiver) while still allowing *cross-channel* races — e.g. a
COMMIT for transaction ``T_k`` arriving at site ``s`` before a PREPARE
for ``T_j`` sent earlier by a different coordinator.  That race is
exactly what motivates the paper's prepare-certification extension
(Sec. 5.3), so the network must be able to produce it.

The fault layer breaks those assumptions on purpose
(:class:`FaultyNetwork` executing a :class:`FaultPlan`), the session
layer re-derives them (:class:`SessionLayer`), and the heartbeat
:class:`FailureDetector` turns silence into an explicit suspicion
signal the coordinators act on (site quarantine).
"""

from repro.net.failure_detector import FailureDetector, FailureDetectorConfig
from repro.net.faults import FaultPlan, FaultyNetwork, LossBurst, Partition
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.net.reliable import ReliableConfig, SessionLayer

__all__ = [
    "FailureDetector",
    "FailureDetectorConfig",
    "FaultPlan",
    "FaultyNetwork",
    "LatencyModel",
    "LossBurst",
    "Message",
    "MsgType",
    "Network",
    "Partition",
    "ReliableConfig",
    "SessionLayer",
]
