"""2PC messages and the simulated network (system S2 in DESIGN.md).

The paper assumes messages "are not corrupted, lost or out of order";
the :class:`Network` honours that per channel (FIFO between one sender
and one receiver) while still allowing *cross-channel* races — e.g. a
COMMIT for transaction ``T_k`` arriving at site ``s`` before a PREPARE
for ``T_j`` sent earlier by a different coordinator.  That race is
exactly what motivates the paper's prepare-certification extension
(Sec. 5.3), so the network must be able to produce it.
"""

from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network

__all__ = ["LatencyModel", "Message", "MsgType", "Network"]
