"""Unreliable transport: seeded fault injection under the 2PC wire.

The paper's Network assumptions (Sec. 2) — no loss, no corruption,
per-channel FIFO — are exactly what :class:`~repro.net.network.Network`
implements.  :class:`FaultyNetwork` deliberately breaks them, so the
session layer (:mod:`repro.net.reliable`) can *re-derive* them and the
chaos nemesis can hammer the whole stack:

* **loss** — a seeded per-message coin drops the message on the floor;
* **duplication** — a second copy is delivered with an independent
  latency draw, unconstrained by the channel's FIFO clock (so the
  duplicate may arrive out of order — receiver-side dedup must cope);
* **delay spikes** — the message is delivered out-of-band after an
  extra random delay, bypassing the FIFO clamp (packet reordering);
* **partitions** — timed bidirectional cuts: while active, every
  message crossing the cut is dropped; the cut *heals* at its end time.

Everything is driven by one seeded RNG separate from the latency RNG,
so enabling faults never perturbs the latency draws of the surviving
messages — and disabling them (``FaultPlan()`` all-zeros, or simply
using the base ``Network``) keeps the determinism goldens byte-
identical.

``heal_at`` turns the whole plan off at a point in simulated time: the
chaos harness uses it to guarantee that after the nemesis window the
system converges over a perfect wire again.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.kernel.events import EventKernel
from repro.net.messages import Message
from repro.net.network import LatencyModel, Network


def _member(address: str, group: FrozenSet[str]) -> bool:
    """Group membership by full address or by the suffix after ':'.

    ``Partition(isolated=frozenset({"a"}))`` cuts off ``agent:a``
    without the caller having to spell out address prefixes.
    """
    if address in group:
        return True
    _, _, suffix = address.rpartition(":")
    return suffix in group


@dataclass(frozen=True)
class Partition:
    """One timed bidirectional cut: ``isolated`` vs. everyone else.

    Active during ``[start, end)``; ``end`` is the heal time.  A
    message is severed when exactly one of its endpoints lies inside
    the isolated group — both directions of every crossing channel.
    """

    isolated: FrozenSet[str]
    start: float
    end: float

    def severs(self, src: str, dst: str, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return _member(src, self.isolated) != _member(dst, self.isolated)


@dataclass(frozen=True)
class LossBurst:
    """A window of elevated loss (a flaky link, a congested switch)."""

    start: float
    end: float
    loss: float

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """The seeded fault schedule one :class:`FaultyNetwork` executes."""

    #: Baseline per-message loss probability.
    loss: float = 0.0
    #: Per-message duplication probability.
    duplication: float = 0.0
    #: Probability that a message takes an out-of-band delay spike.
    spike_probability: float = 0.0
    #: Maximum extra delay of a spike (uniform in ``[0, spike_delay]``).
    spike_delay: float = 0.0
    #: Timed bidirectional partitions.
    partitions: Tuple[Partition, ...] = ()
    #: Timed loss elevations (the effective loss is the max of baseline,
    #: channel override and every covering burst).
    bursts: Tuple[LossBurst, ...] = ()
    #: Per-channel loss overrides keyed by ``(src, dst)``.
    loss_overrides: Optional[Dict[Tuple[str, str], float]] = None
    #: All faults switch off at this simulated time (None = never).
    heal_at: Optional[float] = None

    def active(self, now: float) -> bool:
        return self.heal_at is None or now < self.heal_at

    def loss_at(self, src: str, dst: str, now: float) -> float:
        loss = self.loss
        if self.loss_overrides is not None:
            loss = self.loss_overrides.get((src, dst), loss)
        for burst in self.bursts:
            if burst.covers(now):
                loss = max(loss, burst.loss)
        return loss

    def severed(self, src: str, dst: str, now: float) -> bool:
        return any(p.severs(src, dst, now) for p in self.partitions)

    def describe(self) -> str:
        """One-paragraph schedule summary (chaos CLI / CI artifacts)."""
        lines = [
            f"loss={self.loss} duplication={self.duplication} "
            f"spikes=p{self.spike_probability}/+{self.spike_delay} "
            f"heal_at={self.heal_at}"
        ]
        for p in self.partitions:
            lines.append(
                f"  partition {sorted(p.isolated)} during "
                f"[{p.start:.1f}, {p.end:.1f})"
            )
        for b in self.bursts:
            lines.append(
                f"  loss burst p={b.loss} during [{b.start:.1f}, {b.end:.1f})"
            )
        return "\n".join(lines)


class FaultyNetwork(Network):
    """A :class:`Network` that executes a :class:`FaultPlan`.

    The paper's per-channel FIFO clock still governs ordinary
    deliveries; only duplicates and spiked messages are delivered
    out-of-band (which is the point — the raw wire may reorder).
    ``in_flight`` accounts for dropped messages so it still reaches 0
    at quiescence.
    """

    def __init__(
        self,
        kernel: EventKernel,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        trace_limit: int = 10_000,
        plan: Optional[FaultPlan] = None,
        fault_seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            kernel, latency=latency, seed=seed, trace_limit=trace_limit
        )
        self.plan = plan or FaultPlan()
        #: Faults draw from their own RNG so the latency stream of the
        #: surviving messages is identical to a fault-free run.
        self._fault_rng = random.Random(
            seed ^ 0x5EED if fault_seed is None else fault_seed
        )
        self.messages_lost = 0
        self.messages_duplicated = 0
        self.messages_spiked = 0
        self.partition_drops = 0
        #: ``(time, kind, message)`` per injected fault, bounded like
        #: the delivery trace.
        self.fault_log: List[Tuple[float, str, Message]] = []

    # ------------------------------------------------------------------

    def _note_fault(self, kind: str, message: Message) -> None:
        if len(self.fault_log) < self._trace_limit:
            self.fault_log.append((self._kernel.now, kind, message))

    @property
    def in_flight(self) -> int:
        dropped = self.messages_lost + self.partition_drops
        return self.messages_sent - self.messages_delivered - dropped

    def send(self, message: Message) -> float:
        channel = (message.src, message.dst)
        if channel in self._paused or not self.plan.active(self._kernel.now):
            # Paused channels queue first (scenario scripting); the
            # faults hit when the queue drains back through send().
            return super().send(message)
        now = self._kernel.now
        rng = self._fault_rng
        plan = self.plan
        if plan.severed(message.src, message.dst, now):
            if message.dst not in self._handlers:
                # Same contract as the perfect transport.
                from repro.common.errors import SimulationError

                raise SimulationError(
                    f"no endpoint registered for {message.dst!r}"
                )
            self.messages_sent += 1
            self.partition_drops += 1
            self._note_fault("partition", message)
            return float("inf")
        if rng.random() < plan.loss_at(message.src, message.dst, now):
            if message.dst not in self._handlers:
                from repro.common.errors import SimulationError

                raise SimulationError(
                    f"no endpoint registered for {message.dst!r}"
                )
            self.messages_sent += 1
            self.messages_lost += 1
            self._note_fault("loss", message)
            return float("inf")
        if plan.duplication > 0 and rng.random() < plan.duplication:
            # The copy is out-of-band: independent latency draw, no
            # FIFO clamp — it may overtake or trail arbitrarily.
            self._out_of_band(message, extra=0.0, kind="duplicate")
            self.messages_duplicated += 1
        if (
            plan.spike_probability > 0
            and rng.random() < plan.spike_probability
        ):
            extra = rng.uniform(0.0, plan.spike_delay)
            self.messages_spiked += 1
            return self._out_of_band(message, extra=extra, kind="spike")
        return super().send(message)

    def _out_of_band(self, message: Message, extra: float, kind: str) -> float:
        """Deliver one copy outside the channel's FIFO discipline."""
        if message.dst not in self._handlers:
            from repro.common.errors import SimulationError

            raise SimulationError(f"no endpoint registered for {message.dst!r}")
        now = self._kernel.now
        delay = self._latency.sample(message.src, message.dst, self._rng) + extra
        delivery = now + delay
        self.messages_sent += 1
        self._note_fault(kind, message)
        self._record_trace(now, delivery, message)
        self._kernel.schedule_at(delivery, lambda: self._deliver(message))
        return delivery
