"""Heartbeat failure detector: PING/PONG probing with miss counting.

The paper's coordinator learns of a dead site only by timing out a
specific protocol exchange.  This detector gives it an *asynchronous*
signal instead: a monitor pings every watched address on a fixed
period; ``max_misses`` consecutive unanswered probes mark the address
**suspected** (callback fires once), and the first PONG heard afterwards
**restores** it (callback fires once).  Like every heartbeat detector
over a lossy wire it is only eventually accurate — a long partition
looks exactly like a crash, which is why the coordinator responds with
*quarantine* (refuse new work, finish old work via timeouts), never
with anything irreversible.

Heartbeats are transport-internal (``UNTRACKED`` in the session layer):
retransmitting a heartbeat would defeat its purpose.

The watched endpoints answer PING with PONG themselves (the 2PC agent
does; see ``TwoPCAgent._on_message``) — a crashed process answers
nothing, which is the whole signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.kernel.events import EventKernel
from repro.net.messages import Message, MsgType


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Probe period, suspicion threshold, and an optional shutdown time."""

    #: Time between probe rounds.
    interval: float = 40.0
    #: Consecutive unanswered probes before an address is suspected.
    max_misses: int = 3
    #: Stop probing at this simulated time (``None`` = run until
    #: :meth:`FailureDetector.stop`).  Without one of the two the
    #: periodic timer keeps the kernel from ever going quiescent.
    stop_at: Optional[float] = None
    #: Consecutive PONGs a *suspected* address must answer before the
    #: suspicion is lifted (hysteresis).  1 = restore on the first PONG,
    #: the original behaviour; higher values keep a flapping site
    #: quarantined instead of bouncing it in and out on every lucky
    #: heartbeat.
    restore_pongs: int = 1


class FailureDetector:
    """Monitors a set of addresses from one address of its own."""

    def __init__(
        self,
        kernel: EventKernel,
        network,  # Network or SessionLayer (duck-typed send/register)
        address: str,
        config: Optional[FailureDetectorConfig] = None,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_restore: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._kernel = kernel
        self._network = network
        self.address = address
        self.config = config or FailureDetectorConfig()
        self._on_suspect = on_suspect
        self._on_restore = on_restore
        self._watched: Dict[str, int] = {}  # address -> consecutive misses
        #: Addresses that answered since the last probe round.
        self._answered: Set[str] = set()
        #: Consecutive PONGs heard from each *suspected* address (the
        #: restore-side hysteresis counter; reset on every missed round).
        self._pong_streak: Dict[str, int] = {}
        self.suspected: Set[str] = set()
        self._timer = None
        self._stopped = False
        self.pings_sent = 0
        self.pongs_heard = 0
        #: ``(time, event, address)`` audit trail.
        self.log: List[tuple] = []
        network.register(address, self._on_message)

    # ------------------------------------------------------------------

    def watch(self, address: str) -> None:
        self._watched.setdefault(address, 0)

    def unwatch(self, address: str) -> None:
        self._watched.pop(address, None)
        self._answered.discard(address)
        self.suspected.discard(address)
        self._pong_streak.pop(address, None)

    def start(self) -> None:
        if self._timer is None and not self._stopped:
            self._schedule_round()

    def stop(self) -> None:
        """Cease probing (lets the simulation drain to quiescence)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------

    def _schedule_round(self) -> None:
        stop_at = self.config.stop_at
        if stop_at is not None and self._kernel.now >= stop_at:
            self._timer = None
            return
        self._timer = self._kernel.schedule(self.config.interval, self._round)

    def _round(self) -> None:
        self._timer = None
        if self._stopped:
            return
        for address in list(self._watched):
            if address in self._answered:
                self._watched[address] = 0
            else:
                self._watched[address] += 1
                # Any missed round breaks the restore streak: the site
                # must answer ``restore_pongs`` in a row from scratch.
                self._pong_streak.pop(address, None)
                if (
                    self._watched[address] >= self.config.max_misses
                    and address not in self.suspected
                ):
                    self.suspected.add(address)
                    self.log.append((self._kernel.now, "suspect", address))
                    if self._on_suspect is not None:
                        self._on_suspect(address)
        self._answered.clear()
        for address in self._watched:
            ping = Message(
                MsgType.PING, src=self.address, dst=address, txn=None
            )
            try:
                self._network.send(ping)
            except Exception:
                # Endpoint unregistered entirely; treated as a miss.
                continue
            self.pings_sent += 1
        self._schedule_round()

    def _on_message(self, message: Message) -> None:
        if message.type is not MsgType.PONG:
            return
        peer = message.src
        self.pongs_heard += 1
        self._answered.add(peer)
        if peer in self.suspected:
            streak = self._pong_streak.get(peer, 0) + 1
            if streak < self.config.restore_pongs:
                # Not convinced yet: a flapping site has to prove
                # itself over several consecutive rounds.
                self._pong_streak[peer] = streak
                return
            self._pong_streak.pop(peer, None)
            self.suspected.discard(peer)
            self._watched[peer] = 0
            self.log.append((self._kernel.now, "restore", peer))
            if self._on_restore is not None:
                self._on_restore(peer)
