"""Reliable, per-channel-FIFO message transport with seeded latencies.

Delivery guarantees match the paper's Network assumptions exactly:

* no loss, no corruption;
* messages between one ``(src, dst)`` pair are delivered in send order,
  even when the jittered latency draw for a later message is smaller;
* messages on *different* channels may overtake each other freely —
  which is what produces the Sec. 5.3 COMMIT-overtakes-PREPARE race.

A per-message trace is kept (bounded) for debugging and for tests that
assert on the exact interleavings a scenario produced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SimulationError
from repro.kernel.events import EventKernel
from repro.net.messages import Message

Handler = Callable[[Message], None]


@dataclass(frozen=True)
class LatencyModel:
    """Latency = ``base`` + Uniform(0, ``jitter``) drawn from a seeded RNG.

    ``overrides`` pins the latency of specific channels, which scenario
    scripts use to force a particular message race deterministically.
    """

    base: float = 5.0
    jitter: float = 0.0
    overrides: Optional[Dict[Tuple[str, str], float]] = None

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        if self.overrides is not None and (src, dst) in self.overrides:
            return self.overrides[(src, dst)]
        if self.jitter <= 0:
            return self.base
        return self.base + rng.uniform(0.0, self.jitter)


class Network:
    """The medium the 2PC messages travel through (paper Fig. 1)."""

    def __init__(
        self,
        kernel: EventKernel,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        trace_limit: int = 10_000,
        dead_letter_limit: int = 1_000,
    ) -> None:
        self._kernel = kernel
        self._latency = latency or LatencyModel()
        self._rng = random.Random(seed)
        self._handlers: Dict[str, Handler] = {}
        #: Earliest admissible delivery time per channel, enforcing FIFO.
        self._channel_clock: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self._trace_limit = trace_limit
        #: ``(send_time, delivery_time, message)`` triples, bounded.
        self.trace: List[Tuple[float, float, Message]] = []
        #: Messages the bounded trace could not record (metrics surface
        #: this so a silently-truncated trace is visible).
        self.trace_dropped = 0
        #: Messages that could not be delivered when a paused channel
        #: drained (e.g. the endpoint was unregistered mid-pause), as
        #: ``(message, why)`` pairs.  Bounded: a long outage must not
        #: hold every undeliverable message alive forever, so the oldest
        #: entries are evicted past ``dead_letter_limit`` and counted in
        #: :attr:`dead_letters_dropped` — the *loss* is never silent.
        self.dead_letters: List[Tuple[Message, str]] = []
        self._dead_letter_limit = dead_letter_limit
        self.dead_letters_dropped = 0
        #: Channels currently held back (scenario scripting); messages
        #: queue here in send order and drain on resume.
        self._paused: Dict[Tuple[str, str], List[Message]] = {}

    def register(
        self, address: str, handler: Handler, replace: bool = False
    ) -> None:
        """Attach the message handler for ``address`` (one per endpoint).

        ``replace=True`` takes over an existing endpoint — a successor
        coordinator adopting a dead one's address receives whatever is
        still in flight towards it (the simulated equivalent of a
        standby binding the same host:port).
        """
        if address in self._handlers and not replace:
            raise ConfigError(f"endpoint {address!r} already registered")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        """Detach ``address``; idempotent.

        Later sends towards it raise; messages queued on a paused
        channel towards it dead-letter when the channel drains.
        """
        self._handlers.pop(address, None)

    def note_endpoint_down(self, address: str) -> None:
        """Transport hook: the process behind ``address`` died.

        The perfect transport ignores it (messages are handed to the
        handler, which drops them itself); the session layer uses it to
        stop acknowledging deliveries nobody is listening to.
        """

    def note_endpoint_up(self, address: str) -> None:
        """Transport hook: the process behind ``address`` recovered."""

    def pause_channel(self, src: str, dst: str) -> None:
        """Hold back every message sent on ``(src, dst)`` until resume.

        A paused channel models an arbitrarily slow link — still
        lossless and FIFO, so the paper's Network assumptions hold; the
        scenario scripts use it to place one message race exactly where
        they want it without committing to static latencies up front.
        """
        self._paused.setdefault((src, dst), [])

    def resume_channel(self, src: str, dst: str) -> int:
        """Release a paused channel; queued messages leave now, in order.

        Returns the number of messages released.  An undeliverable
        message (its endpoint was unregistered while the channel was
        paused) is routed to :attr:`dead_letters` and the drain
        continues — one bad message never silently drops the rest of
        the queue.
        """
        queued = self._paused.pop((src, dst), [])
        released = 0
        for message in queued:
            try:
                self.send(message)
            except SimulationError as exc:
                self._dead_letter(message, str(exc))
            else:
                released += 1
        return released

    def _dead_letter(self, message: Message, why: str) -> None:
        """Record an undeliverable message, evicting the oldest past the
        bound (kept a plain list: tests compare it to ``[]``)."""
        self.dead_letters.append((message, why))
        while len(self.dead_letters) > self._dead_letter_limit:
            del self.dead_letters[0]
            self.dead_letters_dropped += 1

    def is_paused(self, src: str, dst: str) -> bool:
        return (src, dst) in self._paused

    def send(self, message: Message) -> float:
        """Enqueue ``message`` for delivery; returns the delivery time.

        Messages on a paused channel are queued (FIFO) and sent on
        resume; their reported delivery time is ``inf`` until then.
        """
        if message.dst not in self._handlers:
            raise SimulationError(f"no endpoint registered for {message.dst!r}")
        channel_key = (message.src, message.dst)
        if channel_key in self._paused:
            self._paused[channel_key].append(message)
            return float("inf")
        now = self._kernel.now
        delay = self._latency.sample(message.src, message.dst, self._rng)
        if delay < 0:
            raise ConfigError(f"negative latency {delay} for {message}")
        channel = (message.src, message.dst)
        earliest = self._channel_clock.get(channel, now)
        delivery = max(now + delay, earliest)
        # Strictly increase the channel clock so two same-channel
        # messages can never swap even at identical times.
        self._channel_clock[channel] = delivery + 1e-9
        self.messages_sent += 1
        self._record_trace(now, delivery, message)
        self._kernel.schedule_at(delivery, lambda: self._deliver(message))
        return delivery

    def _record_trace(self, now: float, delivery: float, message: Message) -> None:
        if len(self.trace) < self._trace_limit:
            self.trace.append((now, delivery, message))
        else:
            self.trace_dropped += 1

    def _deliver(self, message: Message) -> None:
        self.messages_delivered += 1
        self._handlers[message.dst](message)

    @property
    def in_flight(self) -> int:
        return self.messages_sent - self.messages_delivered
