"""The 2PC message vocabulary of the paper's Sec. 2.

Coordinator → Participant: BEGIN, COMMAND (DML submission), PREPARE,
COMMIT, ROLLBACK.  Participant → Coordinator: COMMAND_RESULT, READY,
REFUSE, COMMIT_ACK, ROLLBACK_ACK.

The COMMAND/COMMAND_RESULT pair is how the coordinator "submits [global
subtransactions], command by command, to the Participating Sites"; the
rest is the standard two-phase-commit exchange.

Three transport-level kinds exist below the paper's protocol: ACK is
the session layer's cumulative acknowledgement (never delivered to the
protocol endpoints), PING/PONG are the failure detector's heartbeat
pair.  They carry no transaction.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.common.errors import RefusalReason
from repro.common.ids import SerialNumber, TxnId


class MsgType(enum.Enum):
    """Message kinds exchanged between Coordinators and 2PC Agents."""

    BEGIN = "BEGIN"
    COMMAND = "COMMAND"
    COMMAND_RESULT = "COMMAND_RESULT"
    PREPARE = "PREPARE"
    READY = "READY"
    REFUSE = "REFUSE"
    COMMIT = "COMMIT"
    COMMIT_ACK = "COMMIT-ACK"
    ROLLBACK = "ROLLBACK"
    ROLLBACK_ACK = "ROLLBACK-ACK"
    #: Participant → Coordinator escalation: the agent's resubmission
    #: budget for a prepared subtransaction is exhausted.  Advisory —
    #: the coordinator honours it only while the global decision is
    #: still open (a READY vote cannot be revoked unilaterally).
    GIVEUP = "GIVEUP"
    #: Participant → Coordinator status inquiry: a prepared
    #: subtransaction's decision is overdue (coordinator may have
    #: crashed before deciding).  The coordinator answers with the
    #: logged decision, or ROLLBACK when it has none — presumed abort
    #: is safe because a DECISION record is always forced before the
    #: first COMMIT leaves the coordinator.
    INQUIRE = "INQUIRE"
    #: Session-layer cumulative acknowledgement (transport-internal).
    ACK = "ACK"
    #: Failure-detector heartbeat probe / reply (transport-internal).
    PING = "PING"
    PONG = "PONG"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_msg_seq = itertools.count()


@dataclass
class Message:
    """One message in flight.

    ``payload`` carries the DML command (COMMAND), the command's result
    or error (COMMAND_RESULT), or arbitrary method-specific extras.
    ``sn`` rides on PREPARE messages — the paper transmits the serial
    number "with the PREPARE messages to each participating site".
    ``reason`` explains a REFUSE.  ``seq`` is a globally unique send
    sequence used only for deterministic tie-breaking and tracing.
    ``txn`` is ``None`` for the transport-internal kinds (ACK, PING,
    PONG), which exist below the transaction protocol.

    ``session`` is the reliable-channel envelope: ``(epoch, seq)``
    stamped by the session layer on tracked sends, ``None`` on messages
    from unreliable peers and on transport-internal kinds.

    ``deadline`` is the absolute simulated time after which the
    transaction's outcome no longer matters to its submitter.  It rides
    on BEGIN/COMMAND/PREPARE when the overload layer is on, so agents
    can abort expired work instead of preparing it; ``None`` (the
    default, and always when the overload layer is off) means no bound.

    ``shard``/``shard_epoch`` are the federation fence: a sharded
    coordinator stamps its BEGINs with the shard it believes it owns and
    the ShardMap epoch under which it owns it, so agents can reject
    BEGINs from a deposed owner after a handoff.  Both are ``None``
    (and never consulted) outside federated runs.
    """

    type: MsgType
    src: str
    dst: str
    txn: Optional[TxnId]
    payload: Any = None
    sn: Optional[SerialNumber] = None
    reason: Optional[RefusalReason] = None
    seq: int = field(default_factory=lambda: next(_msg_seq))
    session: Optional[Tuple[int, int]] = None
    deadline: Optional[float] = None
    shard: Optional[int] = None
    shard_epoch: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        extra = ""
        if self.sn is not None:
            extra += f" {self.sn}"
        if self.reason is not None:
            extra += f" ({self.reason})"
        return f"{self.type} {self.txn} {self.src}->{self.dst}{extra}"
