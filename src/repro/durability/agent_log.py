"""``DurableAgentLog``: the 2PC Agent's log, actually on disk.

A drop-in subclass of :class:`~repro.core.agent_log.AgentLog` — every
mutation first lands in the in-memory mirror (which the agent reads on
its hot paths) and is then appended to the WAL; prepare and commit
records are *force* appends, which is the paper's "force-written before
READY is sent".  Kill the process (or close the log and throw the
object away) at any point and :meth:`DurableAgentLog.open_site`
rebuilds the exact open-entry state from the segments, honouring
checkpoints and truncating torn tails.

Record bodies deliberately mirror the mutator signatures, so replay is
a dumb dispatch table — no derived state lives only on disk.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.common.ids import SerialNumber, TxnId
from repro.core.agent_log import AgentLog, AgentLogEntry
from repro.durability.config import DurabilityConfig
from repro.durability.records import RecordKind, WalRecord
from repro.durability.segments import SyncPolicy
from repro.durability.wal import WriteAheadLog
from repro.ldbs.commands import Command


def agent_wal_directory(root: str, site: str) -> str:
    return os.path.join(root, f"agent-{site}")


class DurableAgentLog(AgentLog):
    """Per-site Agent log backed by a :class:`WriteAheadLog`."""

    def __init__(self, site: str, wal: WriteAheadLog) -> None:
        super().__init__(site)
        self.wal = wal
        #: Entries discarded since the last checkpoint (compaction gate).
        self._discards_since_checkpoint = 0
        self._compact_min = 64
        self._compact_dead_ratio = 1.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open_site(cls, site: str, config: DurabilityConfig) -> "DurableAgentLog":
        """Open (or create) the durable log of ``site`` under ``config.root``.

        Replays whatever survives on disk — so this is also the
        recovery entry point: after a crash, ``open_site`` again and
        hand the result to :meth:`TwoPCAgent.recover
        <repro.core.agent.TwoPCAgent.recover>`.
        """
        wal = WriteAheadLog(
            agent_wal_directory(config.root, site),
            sync_policy=SyncPolicy.of(config.sync, config.batch_size),
            segment_bytes=config.segment_bytes,
            disk_faults=config.disk_faults,
        )
        log = cls(site, wal)
        log._compact_min = config.compact_min_discards
        log._compact_dead_ratio = config.compact_dead_ratio
        log._replay(wal.recovery.records)
        return log

    # ------------------------------------------------------------------
    # Mutators: in-memory first, then the WAL append
    # ------------------------------------------------------------------

    def open(self, txn: TxnId, coordinator: str = "") -> AgentLogEntry:
        entry = super().open(txn, coordinator)
        self.wal.append(RecordKind.OPEN, {"txn": txn, "coordinator": coordinator})
        return entry

    def log_command(self, txn: TxnId, command: Command) -> None:
        super().log_command(txn, command)
        self.wal.append(RecordKind.COMMAND, {"txn": txn, "command": command})

    def write_prepare(
        self, txn: TxnId, sn: Optional[SerialNumber], time: float
    ) -> None:
        super().write_prepare(txn, sn, time)
        self.wal.append(
            RecordKind.PREPARE, {"txn": txn, "sn": sn, "time": time}, force=True
        )

    def write_commit(self, txn: TxnId, time: float) -> None:
        super().write_commit(txn, time)
        self.wal.append(RecordKind.COMMIT, {"txn": txn, "time": time}, force=True)

    def note_resubmission(self, txn: TxnId) -> None:
        super().note_resubmission(txn)
        # Forced: a recovered agent must never reuse an incarnation id,
        # so the incarnation counter may not run behind the LTM's truth.
        self.wal.append(RecordKind.RESUBMIT, {"txn": txn}, force=True)

    def record_committed_sn(self, sn: Optional[SerialNumber]) -> None:
        before = self.max_committed_sn
        super().record_committed_sn(sn)
        if self.max_committed_sn != before:
            self.wal.append(RecordKind.MAX_SN, {"sn": self.max_committed_sn})

    def discard(self, txn: TxnId) -> None:
        existed = self.has_entry(txn)
        super().discard(txn)
        if existed:
            self.wal.append(RecordKind.DISCARD, {"txn": txn})
            self._discards_since_checkpoint += 1
            self._maybe_compact()

    def close(self) -> None:
        self.wal.close()

    # ------------------------------------------------------------------
    # Replay + checkpointing
    # ------------------------------------------------------------------

    def _replay(self, records: List[WalRecord]) -> None:
        """Rebuild the in-memory mirror from recovered records.

        Mutates state directly (not through the mutators) so counters
        stay at zero and nothing is re-appended to the WAL.
        """
        for record in records:
            body = record.body
            kind = record.kind
            if kind is RecordKind.CHECKPOINT:
                self._load_snapshot(body)
            elif kind is RecordKind.OPEN:
                entry = AgentLogEntry(
                    txn=body["txn"], coordinator=body.get("coordinator", "")
                )
                self._entries[entry.txn] = entry
            elif kind is RecordKind.COMMAND:
                self._entries[body["txn"]].commands.append(body["command"])
            elif kind is RecordKind.PREPARE:
                entry = self._entries[body["txn"]]
                entry.prepare_sn = body["sn"]
                entry.prepare_time = body["time"]
            elif kind is RecordKind.COMMIT:
                self._entries[body["txn"]].commit_time = body["time"]
            elif kind is RecordKind.RESUBMIT:
                self._entries[body["txn"]].incarnations += 1
            elif kind is RecordKind.MAX_SN:
                sn = body["sn"]
                if self.max_committed_sn is None or (
                    sn is not None and sn > self.max_committed_sn
                ):
                    self.max_committed_sn = sn
            elif kind is RecordKind.DISCARD:
                self._entries.pop(body["txn"], None)
            # DECISION/END records never appear in an agent WAL.

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "max_sn": self.max_committed_sn,
            "entries": [
                {
                    "txn": entry.txn,
                    "coordinator": entry.coordinator,
                    "commands": list(entry.commands),
                    "prepare_sn": entry.prepare_sn,
                    "prepare_time": entry.prepare_time,
                    "commit_time": entry.commit_time,
                    "incarnations": entry.incarnations,
                }
                for entry in self.entries()
            ],
        }

    def _load_snapshot(self, body: Dict[str, Any]) -> None:
        self._entries.clear()
        self.max_committed_sn = body.get("max_sn")
        for entry_body in body.get("entries", ()):
            entry = AgentLogEntry(
                txn=entry_body["txn"],
                coordinator=entry_body.get("coordinator", ""),
                commands=list(entry_body.get("commands", ())),
                prepare_sn=entry_body.get("prepare_sn"),
                prepare_time=entry_body.get("prepare_time"),
                commit_time=entry_body.get("commit_time"),
                incarnations=entry_body.get("incarnations", 1),
            )
            self._entries[entry.txn] = entry

    def _maybe_compact(self) -> None:
        discards = self._discards_since_checkpoint
        if discards < self._compact_min:
            return
        live = len(self._entries)
        if discards < self._compact_dead_ratio * max(1, live):
            return
        self.checkpoint()

    def checkpoint(self) -> None:
        """Force a checkpoint + compaction now (also used by tests)."""
        self.wal.checkpoint(self._snapshot())
        self._discards_since_checkpoint = 0
