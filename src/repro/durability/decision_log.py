"""``DurableDecisionLog``: the coordinator's commit/abort record.

In 2PC the coordinator's decision is *the* ground truth: once the
DECISION record is forced, the transaction's fate is sealed no matter
which participants crash.  This log persists exactly that — one forced
DECISION record per transaction (with the serial number and the
participant set, so a successor coordinator can finish delivery), and
one unforced END record once every participant acknowledged, which
makes the entry compactable.

``in_doubt()`` after a reopen lists decisions without an END — the
transactions a recovering (or adopting) coordinator must re-drive to
completion via :meth:`Coordinator.resume_in_doubt
<repro.core.coordinator.Coordinator.resume_in_doubt>`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.ids import SerialNumber, TxnId
from repro.durability.config import DurabilityConfig
from repro.durability.records import RecordKind, WalRecord
from repro.durability.segments import SyncPolicy
from repro.durability.wal import WriteAheadLog


def coordinator_wal_directory(root: str, name: str) -> str:
    return os.path.join(root, f"coord-{name}")


@dataclass(frozen=True)
class Decision:
    """One sealed transaction outcome."""

    txn: TxnId
    committed: bool
    sn: Optional[SerialNumber]
    #: Participant sites the decision must reach.
    sites: Tuple[str, ...]


class DurableDecisionLog:
    """Coordinator-side decision log backed by a :class:`WriteAheadLog`."""

    def __init__(self, name: str, wal: WriteAheadLog) -> None:
        self.name = name
        self.wal = wal
        self._decisions: Dict[TxnId, Decision] = {}
        self._ended: Dict[TxnId, Decision] = {}
        self.force_writes = 0
        self._ends_since_checkpoint = 0
        self._compact_min = 64
        #: Federation: first SN value above every lease this coordinator
        #: ever held (0 = never leased).  A recovered coordinator must
        #: not mint from a range it may already have consumed, so it
        #: discards any replayed lease below this mark.
        self.lease_high_water = 0
        #: Federation: highest ownership epoch this coordinator logged
        #: per shard (only while it owned the shard).
        self._shard_epochs: Dict[int, int] = {}

    @classmethod
    def open_name(cls, name: str, config: DurabilityConfig) -> "DurableDecisionLog":
        wal = WriteAheadLog(
            coordinator_wal_directory(config.root, name),
            sync_policy=SyncPolicy.of(config.sync, config.batch_size),
            segment_bytes=config.segment_bytes,
            disk_faults=config.disk_faults,
        )
        log = cls(name, wal)
        log._compact_min = config.compact_min_discards
        log._replay(wal.recovery.records)
        return log

    # ------------------------------------------------------------------
    # Mutators
    # ------------------------------------------------------------------

    def log_decision(self, decision: Decision) -> None:
        """Force-write the outcome; after this returns, it is sealed."""
        self._decisions[decision.txn] = decision
        self.wal.append(
            RecordKind.DECISION,
            {
                "txn": decision.txn,
                "committed": decision.committed,
                "sn": decision.sn,
                "sites": list(decision.sites),
            },
            force=True,
        )
        self.force_writes += 1

    def log_end(self, txn: TxnId) -> None:
        """Record that every participant acknowledged the decision."""
        decision = self._decisions.pop(txn, None)
        if decision is None:
            return
        self._ended[txn] = decision
        self.wal.append(RecordKind.END, {"txn": txn})
        self._ends_since_checkpoint += 1
        if self._ends_since_checkpoint >= self._compact_min:
            self.checkpoint()

    def log_lease(self, lo: int, hi: int) -> None:
        """Force-record a lease this coordinator accepted.

        Forced *before* the first draw: once any SN from ``[lo, hi)``
        can reach a certifier, a post-crash incarnation must skip the
        whole range.
        """
        self.lease_high_water = max(self.lease_high_water, hi)
        self.wal.append(
            RecordKind.LEASE,
            {"lo": lo, "hi": hi, "owner": self.name},
            force=True,
        )
        self.force_writes += 1

    def log_shard_epoch(self, shard: int, epoch: int) -> None:
        """Force-record taking ownership of ``shard`` at ``epoch``."""
        self._shard_epochs[shard] = max(self._shard_epochs.get(shard, 0), epoch)
        self.wal.append(
            RecordKind.SHARD_EPOCH,
            {"shard": shard, "epoch": epoch, "owner": self.name},
            force=True,
        )
        self.force_writes += 1

    def shard_epochs(self) -> Dict[int, int]:
        """Highest logged ownership epoch per shard."""
        return dict(self._shard_epochs)

    def close(self) -> None:
        self.wal.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def decision(self, txn: TxnId) -> Optional[Decision]:
        return self._decisions.get(txn) or self._ended.get(txn)

    def in_doubt(self) -> List[Decision]:
        """Decisions whose delivery was never confirmed complete."""
        return [self._decisions[txn] for txn in sorted(self._decisions)]

    def decisions(self) -> List[Decision]:
        """Every known decision (ended or not), in txn order."""
        merged = {**self._ended, **self._decisions}
        return [merged[txn] for txn in sorted(merged)]

    # ------------------------------------------------------------------
    # Replay + checkpointing
    # ------------------------------------------------------------------

    def _replay(self, records: List[WalRecord]) -> None:
        for record in records:
            body = record.body
            if record.kind is RecordKind.CHECKPOINT:
                self._decisions.clear()
                self._ended.clear()
                for entry in body.get("decisions", ()):
                    decision = _decision_from_body(entry)
                    if entry.get("ended"):
                        self._ended[decision.txn] = decision
                    else:
                        self._decisions[decision.txn] = decision
                self.lease_high_water = max(
                    self.lease_high_water, body.get("lease_high_water", 0)
                )
                for shard, epoch in body.get("shard_epochs", {}).items():
                    shard = int(shard)
                    self._shard_epochs[shard] = max(
                        self._shard_epochs.get(shard, 0), int(epoch)
                    )
            elif record.kind is RecordKind.LEASE:
                self.lease_high_water = max(
                    self.lease_high_water, int(body["hi"])
                )
            elif record.kind is RecordKind.SHARD_EPOCH:
                shard = int(body["shard"])
                self._shard_epochs[shard] = max(
                    self._shard_epochs.get(shard, 0), int(body["epoch"])
                )
            elif record.kind is RecordKind.DECISION:
                decision = _decision_from_body(body)
                self._decisions[decision.txn] = decision
            elif record.kind is RecordKind.END:
                decision = self._decisions.pop(body["txn"], None)
                if decision is not None:
                    self._ended[body["txn"]] = decision

    def _snapshot(self) -> Dict[str, Any]:
        # Ended decisions are dropped from the checkpoint entirely —
        # that is the compaction: only in-doubt outcomes must survive.
        return {
            "name": self.name,
            "decisions": [
                {
                    "txn": d.txn,
                    "committed": d.committed,
                    "sn": d.sn,
                    "sites": list(d.sites),
                    "ended": False,
                }
                for d in self.in_doubt()
            ],
            "lease_high_water": self.lease_high_water,
            "shard_epochs": dict(self._shard_epochs),
        }

    def checkpoint(self) -> None:
        self.wal.checkpoint(self._snapshot())
        self._ended.clear()
        self._ends_since_checkpoint = 0


def _decision_from_body(body: Dict[str, Any]) -> Decision:
    return Decision(
        txn=body["txn"],
        committed=body["committed"],
        sn=body.get("sn"),
        sites=tuple(body.get("sites", ())),
    )
