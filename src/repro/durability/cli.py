"""``python -m repro wal`` — offline WAL inspection tooling.

Three subcommands, all read-only unless ``--repair`` is given:

* ``inspect DIR`` — dump every replayable record (kind + summary);
* ``verify DIR``  — scan for torn tails / CRC damage; exit status 1
  when damage is found (``--repair`` truncates it, like open() would);
* ``stats DIR``   — segment/record/byte counts and a per-kind breakdown.

``DIR`` may be a single WAL directory or a durability root containing
``agent-*/`` and ``coord-*/`` WALs — the latter fans out to each.
"""

from __future__ import annotations

import argparse
import os
from typing import Dict, List

from repro.durability.recovery import RecoveryReport, scan_wal, truncate_damage
from repro.durability.segments import list_segments


def wal_directories(path: str) -> List[str]:
    """Resolve ``path`` to the WAL directories beneath it.

    A directory that itself holds segments is returned as-is; otherwise
    every immediate subdirectory holding segments is returned (the
    durability-root layout).
    """
    if list_segments(path):
        return [path]
    found = []
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            child = os.path.join(path, name)
            if os.path.isdir(child) and list_segments(child):
                found.append(child)
    return found


def _report_lines(report: RecoveryReport) -> List[str]:
    lines = [f"{report.directory}: {report.summary()}"]
    for scan in report.segments:
        state = "ok" if scan.damage is None else f"DAMAGED ({scan.damage})"
        lines.append(
            f"  {os.path.basename(scan.path)}: {scan.records} record(s), "
            f"good to byte {scan.good_until}, {state}"
        )
    for path in report.ignored_segments:
        lines.append(f"  {os.path.basename(path)}: IGNORED (follows damage)")
    return lines


def cmd_inspect(path: str) -> int:
    directories = wal_directories(path)
    if not directories:
        print(f"no WAL segments under {path!r}")
        return 1
    for directory in directories:
        report = scan_wal(directory)
        print(f"== {directory} ({report.summary()})")
        for record in report.records:
            print(f"  {record.describe()}")
        if report.total_records > len(report.records):
            superseded = report.total_records - len(report.records)
            print(f"  ({superseded} earlier record(s) superseded by checkpoint)")
    return 0


def cmd_verify(path: str, repair: bool = False) -> int:
    directories = wal_directories(path)
    if not directories:
        print(f"no WAL segments under {path!r}")
        return 1
    status = 0
    for directory in directories:
        report = scan_wal(directory)
        for line in _report_lines(report):
            print(line)
        if not report.clean:
            status = 1
            if repair:
                touched = truncate_damage(report)
                print(f"  repaired: truncated/removed {touched} file(s)")
    return status


def cmd_stats(path: str) -> int:
    directories = wal_directories(path)
    if not directories:
        print(f"no WAL segments under {path!r}")
        return 1
    for directory in directories:
        report = scan_wal(directory)
        by_kind: Dict[str, int] = {}
        for record in report.records:
            by_kind[record.kind.name] = by_kind.get(record.kind.name, 0) + 1
        total_bytes = sum(
            os.path.getsize(p) for _i, p in list_segments(directory)
        )
        print(f"== {directory}")
        print(f"  segments:       {len(report.segments)}")
        print(f"  bytes:          {total_bytes}")
        print(f"  records:        {report.total_records}")
        print(f"  replayable:     {len(report.records)}")
        print(f"  clean:          {report.clean}")
        for kind in sorted(by_kind):
            print(f"  kind {kind:<11} {by_kind[kind]}")
    return 0


def add_wal_parser(subparsers: "argparse._SubParsersAction") -> None:
    """Attach the ``wal`` subcommand to the ``repro`` CLI."""
    parser = subparsers.add_parser(
        "wal", help="inspect, verify, or summarize WAL directories"
    )
    wal_sub = parser.add_subparsers(dest="wal_command", required=True)

    p_inspect = wal_sub.add_parser("inspect", help="dump replayable records")
    p_inspect.add_argument("directory")

    p_verify = wal_sub.add_parser("verify", help="scan for damage")
    p_verify.add_argument("directory")
    p_verify.add_argument(
        "--repair",
        action="store_true",
        help="physically truncate damage (what open() would do)",
    )

    p_stats = wal_sub.add_parser("stats", help="segment/record statistics")
    p_stats.add_argument("directory")

    parser.set_defaults(run=run_wal_command)


def run_wal_command(args: argparse.Namespace) -> int:
    if args.wal_command == "inspect":
        return cmd_inspect(args.directory)
    if args.wal_command == "verify":
        return cmd_verify(args.directory, repair=args.repair)
    return cmd_stats(args.directory)
