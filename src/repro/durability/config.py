"""Durability knobs, grouped so :class:`~repro.core.dtm.SystemConfig`
can carry one optional field instead of six."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DiskFaultConfig:
    """Declarative disk-fault injection for a WAL directory.

    Consumed by :class:`~repro.durability.segments.FaultingFileOps`,
    which the WAL builds when this config rides on
    :attr:`DurabilityConfig.disk_faults`.  Two kinds of fault:

    * deterministic one-shots (``fail_fsync_at`` / ``torn_append_at``,
      1-based call indices, 0 = never) for drills that must hit an
      exact record, and
    * seeded steady-state rates (``fsync_eio_rate`` /
      ``short_write_rate``) for fuzzing.

    Every fault is destructive on purpose: a short write leaves a
    genuine torn tail for the recovery scanner, an fsync raises a real
    ``EIO``-carrying :class:`~repro.durability.segments.DiskFault`.
    With ``once`` (the default) a fired one-shot drops a marker file in
    the WAL directory so the *next* incarnation of the process — which
    is handed the same config by its supervisor — does not crash-loop
    on the same injected fault forever.
    """

    seed: int = 0
    #: Fail the Nth physical fsync of the process with EIO (0 = never).
    fail_fsync_at: int = 0
    #: Tear the Nth record append: write a prefix, then fail (0 = never).
    torn_append_at: int = 0
    #: Steady-state probability of an injected fsync EIO per fsync.
    fsync_eio_rate: float = 0.0
    #: Steady-state probability of a short write per record append.
    short_write_rate: float = 0.0
    #: One-shot faults fire at most once per WAL directory (marker file).
    once: bool = True

    @property
    def armed(self) -> bool:
        return bool(
            self.fail_fsync_at
            or self.torn_append_at
            or self.fsync_eio_rate
            or self.short_write_rate
        )

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DiskFaultConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class DurabilityConfig:
    """How a :class:`~repro.core.dtm.MultidatabaseSystem` persists logs.

    ``root`` is a directory; each agent gets ``<root>/agent-<site>/``
    and each coordinator ``<root>/coord-<name>/``.
    """

    root: str
    #: ``always`` | ``batched`` | ``simulated`` (see SyncPolicy).
    sync: str = "batched"
    #: Group-commit window for the ``batched`` policy.
    batch_size: int = 8
    #: Rotate to a new segment once the active one exceeds this.
    segment_bytes: int = 256 * 1024
    #: Compact (checkpoint + drop old segments) once at least this many
    #: entries were discarded since the last checkpoint...
    compact_min_discards: int = 64
    #: ...and discarded entries outnumber live ones by this factor.
    compact_dead_ratio: float = 1.0
    #: Optional disk-fault injection (chaos drills); ``None`` = a
    #: faithful disk.
    disk_faults: Optional[DiskFaultConfig] = None
