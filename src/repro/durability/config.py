"""Durability knobs, grouped so :class:`~repro.core.dtm.SystemConfig`
can carry one optional field instead of six."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DurabilityConfig:
    """How a :class:`~repro.core.dtm.MultidatabaseSystem` persists logs.

    ``root`` is a directory; each agent gets ``<root>/agent-<site>/``
    and each coordinator ``<root>/coord-<name>/``.
    """

    root: str
    #: ``always`` | ``batched`` | ``simulated`` (see SyncPolicy).
    sync: str = "batched"
    #: Group-commit window for the ``batched`` policy.
    batch_size: int = 8
    #: Rotate to a new segment once the active one exceeds this.
    segment_bytes: int = 256 * 1024
    #: Compact (checkpoint + drop old segments) once at least this many
    #: entries were discarded since the last checkpoint...
    compact_min_discards: int = 64
    #: ...and discarded entries outnumber live ones by this factor.
    compact_dead_ratio: float = 1.0
