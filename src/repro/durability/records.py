"""The WAL record codec: checksummed, length-prefixed, versioned.

On-disk layout of one record::

    +----------+----------+---------------------------+
    | length   | crc32    | payload (length bytes)    |
    | u32 LE   | u32 LE   |                           |
    +----------+----------+---------------------------+

    payload = version (u8) | kind (u8) | body (pickle)

* ``length`` covers the payload only, never the 8-byte frame header.
* ``crc32`` (zlib) is computed over the payload, so a bit flip in
  either the version, the kind or the body is detected.
* ``version`` is the *record-format* version; a reader rejects records
  from the future instead of misparsing them.
* ``body`` is a plain dict of small immutable values (transaction ids,
  serial numbers, DML commands) — exactly the objects the in-memory
  Agent log stores, which the command module guarantees are closure-free
  and picklable (the RTT assumption).

Decoding never trusts the frame: a record that runs past the end of the
buffer is a *torn tail* (:class:`TornRecord`), a record whose checksum
or structure is wrong is :class:`CorruptRecord`.  The recovery scanner
maps both onto "truncate here".
"""

from __future__ import annotations

import enum
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.common.errors import ReproError

#: Format version stamped into every record payload.
RECORD_VERSION = 1

#: Frame header: payload length + payload crc32, little endian.
_FRAME = struct.Struct("<II")
FRAME_SIZE = _FRAME.size

#: Payload prologue: record version + record kind.
_PROLOGUE = struct.Struct("<BB")

#: Hard ceiling on a single record's payload — a corrupted length field
#: must never make the scanner try to allocate gigabytes.
MAX_RECORD_BYTES = 16 * 1024 * 1024


class WalError(ReproError):
    """Base class of durability-layer failures."""


class TornRecord(WalError):
    """The buffer ended mid-record (a torn tail write)."""


class CorruptRecord(WalError):
    """A record failed its CRC or structural checks."""


class RecordKind(enum.IntEnum):
    """What one WAL record describes.

    Agent-log kinds mirror the in-memory
    :class:`~repro.core.agent_log.AgentLog` transitions; the last two
    serve the Coordinator's decision log.  Values are part of the
    on-disk format — never renumber, only append.
    """

    OPEN = 1          #: agent log entry opened (txn, coordinator)
    COMMAND = 2       #: one DML command appended to the replay sequence
    PREPARE = 3       #: the force-written prepare record (READY promise)
    COMMIT = 4        #: the force-written commit record
    RESUBMIT = 5      #: one more incarnation was started
    MAX_SN = 6        #: the max-committed-SN register advanced
    DISCARD = 7       #: the entry reached a final state and was dropped
    CHECKPOINT = 8    #: full live-state snapshot (compaction boundary)
    DECISION = 9      #: coordinator decision record (commit/abort)
    END = 10          #: coordinator finished a decided transaction
    LEASE = 11        #: SN-range lease granted/consumed ([lo, hi) + owner)
    SHARD_EPOCH = 12  #: shard ownership change (shard, epoch, owner)


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    kind: RecordKind
    body: Dict[str, Any]

    def describe(self) -> str:
        """One-line human rendering (the ``wal inspect`` CLI)."""
        txn = self.body.get("txn")
        parts = [self.kind.name.lower()]
        if txn is not None:
            parts.append(str(txn))
        for key in ("coordinator", "sn", "committed", "sites"):
            if key in self.body and self.body[key] is not None:
                parts.append(f"{key}={self.body[key]}")
        if self.kind is RecordKind.COMMAND:
            parts.append(repr(self.body.get("command")))
        if self.kind is RecordKind.CHECKPOINT:
            parts.append(f"entries={len(self.body.get('entries', ()))}")
        return " ".join(parts)


def encode_record(record: WalRecord) -> bytes:
    """Serialize ``record`` into one framed, checksummed blob."""
    body = pickle.dumps(record.body, protocol=pickle.HIGHEST_PROTOCOL)
    payload = _PROLOGUE.pack(RECORD_VERSION, int(record.kind)) + body
    if len(payload) > MAX_RECORD_BYTES:
        raise WalError(
            f"record too large: {len(payload)} bytes (kind={record.kind.name})"
        )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(buffer: bytes, offset: int = 0) -> Tuple[WalRecord, int]:
    """Decode the record at ``offset``; returns ``(record, next_offset)``.

    Raises :class:`TornRecord` when the buffer ends mid-record and
    :class:`CorruptRecord` on any checksum/structure failure.  The
    caller (the recovery scanner) turns either into a truncation point.
    """
    end = len(buffer)
    if offset + FRAME_SIZE > end:
        raise TornRecord(f"frame header torn at offset {offset}")
    length, crc = _FRAME.unpack_from(buffer, offset)
    if length < _PROLOGUE.size or length > MAX_RECORD_BYTES:
        raise CorruptRecord(f"implausible record length {length} at {offset}")
    start = offset + FRAME_SIZE
    if start + length > end:
        raise TornRecord(f"payload torn at offset {offset} (need {length} bytes)")
    payload = buffer[start : start + length]
    if zlib.crc32(payload) != crc:
        raise CorruptRecord(f"CRC mismatch at offset {offset}")
    version, kind_value = _PROLOGUE.unpack_from(payload, 0)
    if version > RECORD_VERSION:
        raise CorruptRecord(
            f"record version {version} from the future at offset {offset}"
        )
    try:
        kind = RecordKind(kind_value)
    except ValueError as exc:
        raise CorruptRecord(f"unknown record kind {kind_value} at {offset}") from exc
    try:
        body = pickle.loads(payload[_PROLOGUE.size :])
    except Exception as exc:  # pickle raises a zoo of types
        raise CorruptRecord(f"undecodable body at offset {offset}: {exc}") from exc
    if not isinstance(body, dict):
        raise CorruptRecord(f"record body is not a dict at offset {offset}")
    return WalRecord(kind=kind, body=body), start + length
