"""Recovery scanning: read a WAL directory back, tolerating damage.

The contract (docs/DURABILITY.md):

* records are replayed in segment order, offset order;
* the first torn or CRC-corrupt record ends the usable log — it and
  everything after it (including any later segments) is discarded.  A
  torn *tail* is the normal result of a crash mid-write; a corrupt
  record in the middle means everything beyond it is of unknowable
  integrity, so it must never be silently replayed;
* a :class:`CHECKPOINT <repro.durability.records.RecordKind>` record
  resets the replay: state is rebuilt from the checkpoint and only
  records after it apply (the scanner returns the suffix starting at
  the last intact checkpoint).

``scan_wal`` is read-only; :class:`~repro.durability.wal.WriteAheadLog`
uses its report to physically truncate the damage before appending.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.durability.records import (
    CorruptRecord,
    RecordKind,
    TornRecord,
    WalRecord,
    decode_record,
)
from repro.durability.segments import (
    SEGMENT_HEADER_SIZE,
    check_segment_header,
    list_segments,
)


@dataclass
class SegmentScan:
    """What one segment contained."""

    index: int
    path: str
    records: int = 0
    #: Offset just past the last intact record (= file size when clean).
    good_until: int = 0
    #: Why the scan stopped early, if it did.
    damage: Optional[str] = None


@dataclass
class RecoveryReport:
    """Everything :func:`scan_wal` learned about a WAL directory."""

    directory: str
    segments: List[SegmentScan] = field(default_factory=list)
    #: Replayable records, already cut down to the last-checkpoint suffix.
    records: List[WalRecord] = field(default_factory=list)
    #: Total records read (including those superseded by a checkpoint).
    total_records: int = 0
    #: Path of the segment where damage was found (None when clean).
    damaged_segment: Optional[str] = None
    #: Records dropped because they sat after the damage point.
    dropped_after_damage: int = 0
    #: Later segments ignored entirely because an earlier one was damaged.
    ignored_segments: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.damaged_segment is None

    def summary(self) -> str:
        state = "clean" if self.clean else f"damaged at {self.damaged_segment}"
        return (
            f"{len(self.segments)} segment(s), {self.total_records} record(s), "
            f"{state}"
        )


def scan_segment_bytes(buffer: bytes, path: str = "") -> SegmentScan:
    """Scan one segment image; never raises on damage, reports it."""
    scan = SegmentScan(index=-1, path=path)
    try:
        check_segment_header(buffer, path)
    except CorruptRecord as exc:
        scan.damage = str(exc)
        scan.good_until = 0
        return scan
    offset = SEGMENT_HEADER_SIZE
    scan.good_until = offset
    end = len(buffer)
    while offset < end:
        try:
            record, offset = decode_record(buffer, offset)
        except (TornRecord, CorruptRecord) as exc:
            scan.damage = str(exc)
            return scan
        del record
        scan.records += 1
        scan.good_until = offset
    return scan


def scan_wal(directory: str) -> RecoveryReport:
    """Read every segment of ``directory`` and return the usable log.

    Pure function of the on-disk state — it never modifies files.  The
    returned :attr:`RecoveryReport.records` already honours checkpoint
    semantics: it is the record suffix starting at the last intact
    CHECKPOINT (or the whole log when none exists).
    """
    report = RecoveryReport(directory=directory)
    records: List[WalRecord] = []
    damaged = False
    for index, path in list_segments(directory):
        if damaged:
            report.ignored_segments.append(path)
            continue
        with open(path, "rb") as handle:
            buffer = handle.read()
        scan = scan_segment_bytes(buffer, path)
        scan.index = index
        report.segments.append(scan)
        offset = SEGMENT_HEADER_SIZE
        # Re-decode up to the good offset (scan_segment_bytes validated
        # it, so this cannot fail) and collect the records.
        while offset < scan.good_until:
            record, offset = decode_record(buffer, offset)
            records.append(record)
        if scan.damage is not None:
            damaged = True
            report.damaged_segment = path
            # Count the bytes after the damage point as dropped records
            # is impossible (they are unparseable); record the fact.
            report.dropped_after_damage = max(0, len(buffer) - scan.good_until)
    report.total_records = len(records)
    # Checkpoint semantics: replay starts at the last intact checkpoint.
    start = 0
    for position, record in enumerate(records):
        if record.kind is RecordKind.CHECKPOINT:
            start = position
    report.records = records[start:]
    return report


def truncate_damage(report: RecoveryReport) -> int:
    """Physically remove everything the scan refused to replay.

    Truncates the damaged segment at its last good offset and deletes
    the ignored later segments.  Returns the number of files touched.
    Idempotent; a clean report is a no-op.
    """
    touched = 0
    if report.damaged_segment is not None:
        for scan in report.segments:
            if scan.path == report.damaged_segment:
                if scan.good_until < SEGMENT_HEADER_SIZE:
                    # Header itself is bad: the file is unusable.
                    os.remove(scan.path)
                else:
                    with open(scan.path, "r+b") as handle:
                        handle.truncate(scan.good_until)
                touched += 1
    for path in report.ignored_segments:
        os.remove(path)
        touched += 1
    return touched
