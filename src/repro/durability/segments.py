"""Append-only segment files and the fsync policy.

A WAL directory holds numbered segments::

    wal-00000001.seg
    wal-00000002.seg
    ...

Each segment starts with a 12-byte header (magic + format version);
records follow back to back in the codec's frame format.  Segment
numbers only ever grow — compaction writes a *new* segment and deletes
the old ones, so the active tail is always the highest number.

:class:`SyncPolicy` decouples "the record is in the OS page cache"
(every append is ``flush()``-ed, so an in-process crash — the failure
the simulator can actually inject — never loses an acknowledged
record) from "the record is on the platter" (``fsync``), which is the
expensive call real systems batch:

* ``always`` — fsync on every force point (textbook 2PC participant);
* ``batched(n)`` — group commit: force points accumulate and one fsync
  covers up to ``n`` of them (or an explicit ``sync()``);
* ``simulated`` — never fsync, only count; for benchmarks where the
  physical write cost is modelled, not paid.
"""

from __future__ import annotations

import errno
import os
import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.durability.records import CorruptRecord, WalError, encode_record

SEGMENT_MAGIC = b"REPROWAL"
#: Format version of the segment container (header + frame layout).
SEGMENT_VERSION = 1
_HEADER = struct.Struct("<8sHH")  # magic, version, reserved
SEGMENT_HEADER_SIZE = _HEADER.size

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def segment_name(index: int) -> str:
    """``wal-00000042.seg`` — zero padded so lexical order = log order."""
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def segment_index(name: str) -> Optional[int]:
    """Inverse of :func:`segment_name`; ``None`` for foreign files."""
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(index, path)`` of every segment in ``directory``, in log order."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        index = segment_index(name)
        if index is not None:
            found.append((index, os.path.join(directory, name)))
    found.sort()
    return found


def encode_segment_header() -> bytes:
    return _HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0)


def check_segment_header(buffer: bytes, path: str = "") -> None:
    """Validate a segment's 12-byte header; raises :class:`CorruptRecord`."""
    if len(buffer) < SEGMENT_HEADER_SIZE:
        raise CorruptRecord(f"segment {path!r} shorter than its header")
    magic, version, _reserved = _HEADER.unpack_from(buffer, 0)
    if magic != SEGMENT_MAGIC:
        raise CorruptRecord(f"segment {path!r} has bad magic {magic!r}")
    if version > SEGMENT_VERSION:
        raise CorruptRecord(
            f"segment {path!r} has version {version} from the future"
        )


@dataclass(frozen=True)
class SyncPolicy:
    """When force points turn into physical ``fsync`` calls.

    ``batch_size`` is the group-commit window: 1 = sync every force
    point, N>1 = one fsync per N force points, 0 = never (simulated).
    """

    name: str
    batch_size: int

    @staticmethod
    def always() -> "SyncPolicy":
        return SyncPolicy("always", 1)

    @staticmethod
    def batched(batch_size: int = 8) -> "SyncPolicy":
        if batch_size < 1:
            raise WalError(f"batch_size must be >= 1, got {batch_size}")
        return SyncPolicy("batched", batch_size)

    @staticmethod
    def simulated() -> "SyncPolicy":
        return SyncPolicy("simulated", 0)

    @staticmethod
    def of(name: str, batch_size: int = 8) -> "SyncPolicy":
        """Resolve a config string (``always``/``batched``/``simulated``)."""
        if name == "always":
            return SyncPolicy.always()
        if name == "batched":
            return SyncPolicy.batched(batch_size)
        if name == "simulated":
            return SyncPolicy.simulated()
        raise WalError(f"unknown sync policy {name!r}")


class DiskFault(OSError):
    """An injected disk failure (fsync EIO, short write, torn tail).

    Subclasses ``OSError`` because that is exactly what the real
    syscall would raise; carries ``errno.EIO`` so callers that branch
    on errno behave as they would against failing hardware.
    """

    def __init__(self, message: str) -> None:
        super().__init__(errno.EIO, message)


class FileOps:
    """The file syscalls a :class:`SegmentWriter` performs.

    Pluggable so chaos drills can interpose
    :class:`FaultingFileOps`; the default is a transparent passthrough.
    One instance is shared by every writer of a WAL (counters and
    one-shot fault indices span segment rotations).
    """

    def write(self, file, data: bytes) -> None:
        file.write(data)
        file.flush()

    def fsync(self, file) -> None:
        os.fsync(file.fileno())

    def stats(self) -> Dict[str, int]:
        return {}


class FaultingFileOps(FileOps):
    """Seeded fault injection over :class:`FileOps`.

    Built from a
    :class:`~repro.durability.config.DiskFaultConfig`: deterministic
    one-shot faults by call index plus seeded steady-state rates.  A
    short/torn write persists a *prefix* of the record (write + flush)
    before raising, so the damage is a genuine torn tail on disk — the
    recovery scanner must truncate it, not this code.

    ``marker_path`` (when set) implements fire-at-most-once across
    process incarnations: the marker file is created the instant a
    one-shot fault fires, and a fresh instance that finds it disables
    its one-shot faults (rates stay live).
    """

    def __init__(self, config, marker_path: Optional[str] = None) -> None:
        self.config = config
        self.marker_path = marker_path
        self._rng = random.Random(config.seed ^ 0xD15C)
        self.writes = 0
        self.fsyncs = 0
        self.torn_writes = 0
        self.fsync_failures = 0
        self._one_shots_armed = not (
            config.once
            and marker_path is not None
            and os.path.exists(marker_path)
        )

    @property
    def fired(self) -> bool:
        """Did a one-shot fault fire — now or in a past incarnation?"""
        if self.torn_writes or self.fsync_failures:
            return True
        return self.marker_path is not None and os.path.exists(self.marker_path)

    def _mark_fired(self) -> None:
        if self.config.once and self.marker_path is not None:
            with open(self.marker_path, "w") as fh:
                fh.write("fired\n")

    def write(self, file, data: bytes) -> None:
        self.writes += 1
        tear = (
            self._one_shots_armed
            and self.config.torn_append_at
            and self.writes == self.config.torn_append_at
        )
        if not tear and self.config.short_write_rate:
            tear = self._rng.random() < self.config.short_write_rate
        if tear:
            keep = max(1, len(data) // 2)
            file.write(data[:keep])
            file.flush()
            self.torn_writes += 1
            self._mark_fired()
            raise DiskFault(
                f"injected short write ({keep}/{len(data)} bytes) on "
                f"append #{self.writes}"
            )
        file.write(data)
        file.flush()

    def fsync(self, file) -> None:
        self.fsyncs += 1
        fail = (
            self._one_shots_armed
            and self.config.fail_fsync_at
            and self.fsyncs == self.config.fail_fsync_at
        )
        if not fail and self.config.fsync_eio_rate:
            fail = self._rng.random() < self.config.fsync_eio_rate
        if fail:
            self.fsync_failures += 1
            self._mark_fired()
            raise DiskFault(f"injected fsync EIO on fsync #{self.fsyncs}")
        os.fsync(file.fileno())

    def stats(self) -> Dict[str, int]:
        return {
            "writes": self.writes,
            "fsyncs": self.fsyncs,
            "torn_writes": self.torn_writes,
            "fsync_failures": self.fsync_failures,
            "fired": self.fired,
        }


class SegmentWriter:
    """Appends framed records to one segment file.

    The writer always ``flush()``-es the Python buffer after an append
    (process-crash durability); ``maybe_sync``/``sync`` handle the
    fsync side per :class:`SyncPolicy`.  All physical writes/fsyncs go
    through ``file_ops`` so fault injection can interpose.
    """

    def __init__(
        self,
        path: str,
        policy: SyncPolicy,
        fresh: bool,
        file_ops: Optional[FileOps] = None,
    ) -> None:
        self.path = path
        self.policy = policy
        self.file_ops = file_ops if file_ops is not None else FileOps()
        self._pending_forces = 0
        self.fsyncs = 0
        self.appends = 0
        if fresh:
            self._file = open(path, "wb")
            self._file.write(encode_segment_header())
            self._file.flush()
            self.size = SEGMENT_HEADER_SIZE
        else:
            self._file = open(path, "ab")
            self.size = self._file.tell()

    def append(self, blob: bytes) -> None:
        try:
            self.file_ops.write(self._file, blob)
        except OSError:
            # A short write may have persisted a prefix: account for
            # what we know reached the file object, then re-raise —
            # the owner fail-stops and recovery truncates the tear.
            self.size = self._file.tell()
            raise
        self.size += len(blob)
        self.appends += 1

    def force(self) -> bool:
        """Register one force point; fsync if the policy says so now."""
        if self.policy.batch_size == 0:
            return False
        self._pending_forces += 1
        if self._pending_forces >= self.policy.batch_size:
            return self.sync()
        return False

    def sync(self) -> bool:
        """Drain the group-commit window with one physical fsync."""
        if self.policy.batch_size == 0:
            self._pending_forces = 0
            return False
        self._file.flush()
        self.file_ops.fsync(self._file)
        self.fsyncs += 1
        self._pending_forces = 0
        return True

    @property
    def pending_forces(self) -> int:
        return self._pending_forces

    def close(self) -> None:
        if self._file.closed:
            return
        if self._pending_forces:
            self.sync()
        self._file.close()


def write_segment(path: str, records) -> int:
    """Write a brand-new segment containing ``records``; returns bytes.

    Used by compaction to materialize a checkpoint segment atomically
    (write to a temp name, fsync, rename).
    """
    tmp = path + ".tmp"
    size = 0
    with open(tmp, "wb") as handle:
        header = encode_segment_header()
        handle.write(header)
        size += len(header)
        for record in records:
            blob = encode_record(record)
            handle.write(blob)
            size += len(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return size
