"""Append-only segment files and the fsync policy.

A WAL directory holds numbered segments::

    wal-00000001.seg
    wal-00000002.seg
    ...

Each segment starts with a 12-byte header (magic + format version);
records follow back to back in the codec's frame format.  Segment
numbers only ever grow — compaction writes a *new* segment and deletes
the old ones, so the active tail is always the highest number.

:class:`SyncPolicy` decouples "the record is in the OS page cache"
(every append is ``flush()``-ed, so an in-process crash — the failure
the simulator can actually inject — never loses an acknowledged
record) from "the record is on the platter" (``fsync``), which is the
expensive call real systems batch:

* ``always`` — fsync on every force point (textbook 2PC participant);
* ``batched(n)`` — group commit: force points accumulate and one fsync
  covers up to ``n`` of them (or an explicit ``sync()``);
* ``simulated`` — never fsync, only count; for benchmarks where the
  physical write cost is modelled, not paid.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.durability.records import CorruptRecord, WalError, encode_record

SEGMENT_MAGIC = b"REPROWAL"
#: Format version of the segment container (header + frame layout).
SEGMENT_VERSION = 1
_HEADER = struct.Struct("<8sHH")  # magic, version, reserved
SEGMENT_HEADER_SIZE = _HEADER.size

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def segment_name(index: int) -> str:
    """``wal-00000042.seg`` — zero padded so lexical order = log order."""
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def segment_index(name: str) -> Optional[int]:
    """Inverse of :func:`segment_name`; ``None`` for foreign files."""
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(index, path)`` of every segment in ``directory``, in log order."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        index = segment_index(name)
        if index is not None:
            found.append((index, os.path.join(directory, name)))
    found.sort()
    return found


def encode_segment_header() -> bytes:
    return _HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0)


def check_segment_header(buffer: bytes, path: str = "") -> None:
    """Validate a segment's 12-byte header; raises :class:`CorruptRecord`."""
    if len(buffer) < SEGMENT_HEADER_SIZE:
        raise CorruptRecord(f"segment {path!r} shorter than its header")
    magic, version, _reserved = _HEADER.unpack_from(buffer, 0)
    if magic != SEGMENT_MAGIC:
        raise CorruptRecord(f"segment {path!r} has bad magic {magic!r}")
    if version > SEGMENT_VERSION:
        raise CorruptRecord(
            f"segment {path!r} has version {version} from the future"
        )


@dataclass(frozen=True)
class SyncPolicy:
    """When force points turn into physical ``fsync`` calls.

    ``batch_size`` is the group-commit window: 1 = sync every force
    point, N>1 = one fsync per N force points, 0 = never (simulated).
    """

    name: str
    batch_size: int

    @staticmethod
    def always() -> "SyncPolicy":
        return SyncPolicy("always", 1)

    @staticmethod
    def batched(batch_size: int = 8) -> "SyncPolicy":
        if batch_size < 1:
            raise WalError(f"batch_size must be >= 1, got {batch_size}")
        return SyncPolicy("batched", batch_size)

    @staticmethod
    def simulated() -> "SyncPolicy":
        return SyncPolicy("simulated", 0)

    @staticmethod
    def of(name: str, batch_size: int = 8) -> "SyncPolicy":
        """Resolve a config string (``always``/``batched``/``simulated``)."""
        if name == "always":
            return SyncPolicy.always()
        if name == "batched":
            return SyncPolicy.batched(batch_size)
        if name == "simulated":
            return SyncPolicy.simulated()
        raise WalError(f"unknown sync policy {name!r}")


class SegmentWriter:
    """Appends framed records to one segment file.

    The writer always ``flush()``-es the Python buffer after an append
    (process-crash durability); ``maybe_sync``/``sync`` handle the
    fsync side per :class:`SyncPolicy`.
    """

    def __init__(self, path: str, policy: SyncPolicy, fresh: bool) -> None:
        self.path = path
        self.policy = policy
        self._pending_forces = 0
        self.fsyncs = 0
        self.appends = 0
        if fresh:
            self._file = open(path, "wb")
            self._file.write(encode_segment_header())
            self._file.flush()
            self.size = SEGMENT_HEADER_SIZE
        else:
            self._file = open(path, "ab")
            self.size = self._file.tell()

    def append(self, blob: bytes) -> None:
        self._file.write(blob)
        self._file.flush()
        self.size += len(blob)
        self.appends += 1

    def force(self) -> bool:
        """Register one force point; fsync if the policy says so now."""
        if self.policy.batch_size == 0:
            return False
        self._pending_forces += 1
        if self._pending_forces >= self.policy.batch_size:
            return self.sync()
        return False

    def sync(self) -> bool:
        """Drain the group-commit window with one physical fsync."""
        if self.policy.batch_size == 0:
            self._pending_forces = 0
            return False
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._pending_forces = 0
        return True

    @property
    def pending_forces(self) -> int:
        return self._pending_forces

    def close(self) -> None:
        if self._file.closed:
            return
        if self._pending_forces:
            self.sync()
        self._file.close()


def write_segment(path: str, records) -> int:
    """Write a brand-new segment containing ``records``; returns bytes.

    Used by compaction to materialize a checkpoint segment atomically
    (write to a temp name, fsync, rename).
    """
    tmp = path + ".tmp"
    size = 0
    with open(tmp, "wb") as handle:
        header = encode_segment_header()
        handle.write(header)
        size += len(header)
        for record in records:
            blob = encode_record(record)
            handle.write(blob)
            size += len(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return size
