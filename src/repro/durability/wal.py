"""The write-ahead log: segments + recovery + checkpointing.

One :class:`WriteAheadLog` owns one directory of segment files.  On
open it scans what is on disk (tolerating a torn tail or corrupt
record by physically truncating the damage — the scanner's report says
where), exposes the replayable records to its owner, and positions the
writer at the intact tail.

Appends are framed through the record codec; *force* appends mark
group-commit points for the :class:`~repro.durability.segments.SyncPolicy`.
``checkpoint`` rewrites the live state into a fresh segment and drops
every older one — that is also the compaction story: the owner decides
*when* (discarded entries dominating), the WAL knows *how*.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.durability.records import RecordKind, WalRecord, encode_record
from repro.durability.recovery import RecoveryReport, scan_wal, truncate_damage
from repro.durability.segments import (
    FaultingFileOps,
    FileOps,
    SegmentWriter,
    SyncPolicy,
    list_segments,
    segment_name,
    write_segment,
)

#: Dropped next to the segments once a one-shot injected fault fires,
#: so the same DiskFaultConfig handed to a respawned process does not
#: re-fire forever (see FaultingFileOps).
DISK_FAULT_MARKER = "disk-fault-fired"


class WriteAheadLog:
    """An append-only, segment-rotating, checksummed log directory."""

    def __init__(
        self,
        directory: str,
        sync_policy: Optional[SyncPolicy] = None,
        segment_bytes: int = 256 * 1024,
        disk_faults=None,
    ) -> None:
        self.directory = directory
        self.sync_policy = sync_policy or SyncPolicy.batched()
        self.segment_bytes = segment_bytes
        os.makedirs(directory, exist_ok=True)
        if disk_faults is not None and disk_faults.armed:
            self.file_ops: FileOps = FaultingFileOps(
                disk_faults,
                marker_path=os.path.join(directory, DISK_FAULT_MARKER),
            )
        else:
            self.file_ops = FileOps()

        #: What open() found on disk (records already cut to the last
        #: checkpoint suffix; damage already physically truncated).
        self.recovery: RecoveryReport = scan_wal(directory)
        self.repaired_files = truncate_damage(self.recovery)

        segments = list_segments(directory)
        if segments:
            last_index, last_path = segments[-1]
            self._segment_index = last_index
            self._writer = SegmentWriter(
                last_path, self.sync_policy, fresh=False, file_ops=self.file_ops
            )
        else:
            self._segment_index = 1
            self._writer = SegmentWriter(
                os.path.join(directory, segment_name(1)),
                self.sync_policy,
                fresh=True,
                file_ops=self.file_ops,
            )
        self.records_appended = 0
        self.forced_appends = 0
        self.checkpoints = 0
        #: fsyncs performed by writers already rotated out or closed.
        self._retired_fsyncs = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(
        self, kind: RecordKind, body: Dict[str, Any], force: bool = False
    ) -> None:
        """Append one record; ``force`` marks a group-commit point."""
        self._ensure_open()
        if self._writer.size >= self.segment_bytes:
            self._rotate()
        self._writer.append(encode_record(WalRecord(kind=kind, body=body)))
        self.records_appended += 1
        if force:
            self.forced_appends += 1
            self._writer.force()

    def sync(self) -> None:
        """Flush the group-commit window now (one fsync if pending)."""
        self._writer.sync()

    def _rotate(self) -> None:
        self._retire_writer()
        self._segment_index += 1
        self._writer = SegmentWriter(
            os.path.join(self.directory, segment_name(self._segment_index)),
            self.sync_policy,
            fresh=True,
            file_ops=self.file_ops,
        )

    def _retire_writer(self) -> None:
        self._writer.close()
        self._retired_fsyncs += self._writer.fsyncs

    # ------------------------------------------------------------------
    # Checkpointing / compaction
    # ------------------------------------------------------------------

    def checkpoint(self, state: Dict[str, Any]) -> None:
        """Write ``state`` as a CHECKPOINT into a fresh segment and drop
        every older segment.

        The new segment is materialized under a temporary name and
        fsynced before the rename, so a crash during compaction leaves
        either the old segments or the complete new one — never a
        half-written checkpoint as the only copy.
        """
        self._ensure_open()
        old_segments = [path for _index, path in list_segments(self.directory)]
        self._retire_writer()
        self._segment_index += 1
        path = os.path.join(self.directory, segment_name(self._segment_index))
        write_segment(path, [WalRecord(RecordKind.CHECKPOINT, state)])
        for old in old_segments:
            os.remove(old)
        self._writer = SegmentWriter(
            path, self.sync_policy, fresh=False, file_ops=self.file_ops
        )
        self.checkpoints += 1
        self.records_appended += 1

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def fsyncs(self) -> int:
        if self.closed:  # the last writer was already retired
            return self._retired_fsyncs
        return self._retired_fsyncs + self._writer.fsyncs

    def segment_paths(self) -> List[str]:
        return [path for _index, path in list_segments(self.directory)]

    @property
    def disk_fault_fired(self) -> bool:
        """Did an injected one-shot disk fault fire here — in this
        incarnation or (via the marker file) a previous one?"""
        if isinstance(self.file_ops, FaultingFileOps) and self.file_ops.fired:
            return True
        return os.path.exists(os.path.join(self.directory, DISK_FAULT_MARKER))

    def stats(self) -> Dict[str, Any]:
        stats = {
            "directory": self.directory,
            "segments": len(self.segment_paths()),
            "records_appended": self.records_appended,
            "forced_appends": self.forced_appends,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "sync_policy": self.sync_policy.name,
        }
        disk_faults = self.file_ops.stats()
        if disk_faults:
            stats["disk_faults"] = disk_faults
        return stats

    @property
    def closed(self) -> bool:
        return self._writer._file.closed  # noqa: SLF001 - own module

    def close(self) -> None:
        """Flush and close; safe to call twice (crash + teardown)."""
        if not self.closed:
            self._retire_writer()

    def _ensure_open(self) -> None:
        if self.closed:
            raise RuntimeError(
                f"WAL {self.directory!r} is closed (crashed agent?)"
            )
