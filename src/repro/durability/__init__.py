"""Durability subsystem: a real write-ahead log under the 2PC Agent.

The paper's method rests on one durable promise: the prepare record is
*force-written* before READY is sent, so the simulated prepared state
survives the death of the agent itself.  The in-memory
:class:`~repro.core.agent_log.AgentLog` only *counts* those force
writes; this package makes them real:

* :mod:`repro.durability.records` — a checksummed, length-prefixed,
  versioned record codec;
* :mod:`repro.durability.segments` — append-only segment files with a
  pluggable :class:`~repro.durability.segments.SyncPolicy`
  (always / batched group-commit / simulated);
* :mod:`repro.durability.recovery` — a scanner that tolerates torn
  tails and CRC-corrupt records by truncating at the first bad record;
* :mod:`repro.durability.wal` — the segment-rotating, checkpointing,
  compacting :class:`~repro.durability.wal.WriteAheadLog`;
* :mod:`repro.durability.agent_log` —
  :class:`~repro.durability.agent_log.DurableAgentLog`, a drop-in
  replacement for the in-memory Agent log that can be killed and
  reopened from disk;
* :mod:`repro.durability.decision_log` —
  :class:`~repro.durability.decision_log.DurableDecisionLog`, the
  Coordinator's durable commit/abort decision record;
* :mod:`repro.durability.cli` — ``python -m repro wal
  {inspect,verify,stats}``.

The in-memory log remains the default (the deterministic goldens rely
on it); durability is opted into per system via
:class:`DurabilityConfig` on :class:`~repro.core.dtm.SystemConfig`.
"""

from repro.durability.agent_log import DurableAgentLog
from repro.durability.config import DurabilityConfig
from repro.durability.decision_log import Decision, DurableDecisionLog
from repro.durability.records import RecordKind, WalRecord
from repro.durability.recovery import RecoveryReport, scan_wal
from repro.durability.segments import SyncPolicy
from repro.durability.wal import WriteAheadLog

__all__ = [
    "Decision",
    "DurabilityConfig",
    "DurableAgentLog",
    "DurableDecisionLog",
    "RecordKind",
    "RecoveryReport",
    "SyncPolicy",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
]
