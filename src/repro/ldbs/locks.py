"""Multi-granularity strict lock manager (system S4, SRS via S2PL).

Grammar of resources:

* ``("table", name)`` — one per table, taken in an intention or scan
  mode;
* ``("row", DataItemId)`` — one per row, taken in S or X.

Modes are the classic five (IS, IX, S, SIX, X) with the standard
compatibility matrix, so full-table scans (S on the table) block
concurrent inserts/deletes (IX on the table) — eliminating phantoms and
keeping the decomposition function deterministic per the DDF assumption.

Locks are *strict*: the LTM releases them only at commit/abort, which
together with the shared-lock-until-end discipline gives rigorous
histories (the paper's SRS assumption; cf. Breitbart et al. 1991).  A
deliberately non-rigorous variant (early read-lock release) is offered
through :meth:`LockManager.release` and used by the SRS-ablation
experiments.

Deadlocks are broken by per-request timeouts (the paper's 2CM uses
"timeout based deadlock resolution"); a wait-for-graph snapshot is also
provided for diagnostics and for the optional victim-picking policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.common.errors import LockTimeout, SimulationError
from repro.common.ids import SubtxnId
from repro.kernel.events import Event, EventHandle, EventKernel

Resource = Tuple[str, Hashable]


class LockMode(enum.Enum):
    """Multi-granularity lock modes."""

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_COMPATIBLE: Dict[Tuple[LockMode, LockMode], bool] = {}


def _fill_compatibility() -> None:
    table = {
        LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
        LockMode.IX: {LockMode.IS, LockMode.IX},
        LockMode.S: {LockMode.IS, LockMode.S},
        LockMode.SIX: {LockMode.IS},
        LockMode.X: set(),
    }
    for a in LockMode:
        for b in LockMode:
            _COMPATIBLE[(a, b)] = b in table[a]


_fill_compatibility()


def compatible(a: LockMode, b: LockMode) -> bool:
    """Whether two holders may coexist on the same resource."""
    return _COMPATIBLE[(a, b)]


_SUPREMUM: Dict[Tuple[LockMode, LockMode], LockMode] = {}


def _fill_supremum() -> None:
    order = [LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X]
    special = {
        frozenset((LockMode.IX, LockMode.S)): LockMode.SIX,
        frozenset((LockMode.IX, LockMode.SIX)): LockMode.SIX,
        frozenset((LockMode.S, LockMode.SIX)): LockMode.SIX,
    }
    for a in LockMode:
        for b in LockMode:
            if a == b:
                _SUPREMUM[(a, b)] = a
                continue
            key = frozenset((a, b))
            if key in special:
                _SUPREMUM[(a, b)] = special[key]
            elif LockMode.X in key:
                _SUPREMUM[(a, b)] = LockMode.X
            else:
                _SUPREMUM[(a, b)] = max(a, b, key=order.index)


_fill_supremum()


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """The weakest mode at least as strong as both ``a`` and ``b``."""
    return _SUPREMUM[(a, b)]


def covers(held: LockMode, wanted: LockMode) -> bool:
    """Whether holding ``held`` already satisfies a request for ``wanted``."""
    return supremum(held, wanted) == held


@dataclass
class _Request:
    owner: SubtxnId
    resource: Resource
    mode: LockMode
    event: Event
    conversion: bool
    timeout_handle: Optional[EventHandle] = None
    enqueued_at: float = 0.0


@dataclass
class _ResourceState:
    resource: Resource
    #: Creation rank (``_resources`` insertion order) — used to wake
    #: resources in the same order the old full-scan implementation did.
    index: int
    holders: Dict[SubtxnId, LockMode] = field(default_factory=dict)
    queue: List[_Request] = field(default_factory=list)


class LockManager:
    """FIFO-fair strict lock manager with conversion priority.

    Two owner-keyed indexes keep the termination path off the
    scan-every-queue slow path: ``_held_by_owner`` (resources an owner
    holds) and ``_queued_by_owner`` (resources where it has queued
    requests, with multiplicity).  ``_contended`` tracks the resources
    with a non-empty queue so ``has_waiters`` and the wait-for-graph
    snapshot never visit uncontended resources.
    """

    def __init__(
        self,
        kernel: EventKernel,
        default_timeout: Optional[float] = None,
    ) -> None:
        self._kernel = kernel
        self.default_timeout = default_timeout
        self._resources: Dict[Resource, _ResourceState] = {}
        self._held_by_owner: Dict[SubtxnId, Set[Resource]] = {}
        self._queued_by_owner: Dict[SubtxnId, Dict[Resource, int]] = {}
        self._contended: Dict[Resource, _ResourceState] = {}
        self.grants = 0
        self.waits = 0
        self.timeouts = 0
        #: Invoked whenever a request starts waiting (deadlock-detector
        #: hook: the detector only needs to run while someone waits).
        self.on_wait: Optional[callable] = None

    @property
    def has_waiters(self) -> bool:
        return bool(self._contended)

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def acquire(
        self,
        owner: SubtxnId,
        resource: Resource,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> Event:
        """Request ``mode`` on ``resource``; the event fires on grant.

        A request from an owner that already holds a covering mode is
        granted immediately.  Otherwise the *effective* mode is the
        supremum of held and requested (lock conversion), and the
        request waits until it is compatible with all other holders.
        Conversions queue ahead of fresh acquisitions.  On timeout the
        event fails with :class:`LockTimeout`.
        """
        state = self._resources.get(resource)
        if state is None:
            state = _ResourceState(resource=resource, index=len(self._resources))
            self._resources[resource] = state
        # NB: a tuple, not an f-string — rendering owner/resource/mode
        # per acquire dominated the uncontended fast path; ``Event``
        # only ever repr()s the name inside error messages.
        event = Event(self._kernel, name=("lock", owner, resource, mode))
        holders = state.holders
        held = holders.get(owner)
        if held is not None and covers(held, mode):
            self.grants += 1
            event.succeed(held)
            return event

        effective = mode if held is None else supremum(held, mode)
        conversion = held is not None
        # Uncontended fast path: nobody queued and no *other* holder —
        # no compatibility scan or FIFO check needed.
        if not state.queue and (
            not holders
            or (held is not None and len(holders) == 1)
            or self._grantable(state, owner, effective)
        ):
            self._grant(state, owner, resource, effective)
            event.succeed(effective)
            return event
        if state.queue and self._grantable(
            state, owner, effective
        ) and not self._must_wait_fifo(state, conversion):
            self._grant(state, owner, resource, effective)
            event.succeed(effective)
            return event

        request = _Request(
            owner=owner,
            resource=resource,
            mode=effective,
            event=event,
            conversion=conversion,
            enqueued_at=self._kernel.now,
        )
        self.waits += 1
        if conversion:
            insert_at = 0
            while insert_at < len(state.queue) and state.queue[insert_at].conversion:
                insert_at += 1
            state.queue.insert(insert_at, request)
        else:
            state.queue.append(request)
        self._contended.setdefault(resource, state)
        qmap = self._queued_by_owner.setdefault(owner, {})
        qmap[resource] = qmap.get(resource, 0) + 1
        wait_limit = self.default_timeout if timeout is None else timeout
        if wait_limit is not None:
            request.timeout_handle = self._kernel.schedule(
                wait_limit, lambda: self._timeout(request)
            )
        if self.on_wait is not None:
            self.on_wait()
        return event

    def _grantable(
        self, state: _ResourceState, owner: SubtxnId, mode: LockMode
    ) -> bool:
        return all(
            compatible(held, mode)
            for holder, held in state.holders.items()
            if holder != owner
        )

    def _must_wait_fifo(self, state: _ResourceState, conversion: bool) -> bool:
        """FIFO fairness: a fresh request must not overtake the queue.

        Conversions may overtake waiting fresh requests (they only ever
        queue behind other conversions), which is the standard policy to
        keep upgraders from starving behind newcomers.
        """
        if not state.queue:
            return False
        if conversion:
            return any(req.conversion for req in state.queue)
        return True

    def _grant(
        self,
        state: _ResourceState,
        owner: SubtxnId,
        resource: Resource,
        mode: LockMode,
    ) -> None:
        self.grants += 1
        state.holders[owner] = mode
        self._held_by_owner.setdefault(owner, set()).add(resource)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, owner: SubtxnId, resource: Resource) -> None:
        """Release one resource (used by the non-rigorous LTM variant)."""
        state = self._resources.get(resource)
        if state is None or owner not in state.holders:
            return
        del state.holders[owner]
        held = self._held_by_owner.get(owner)
        if held is not None:
            held.discard(resource)
        self._wake(resource, state)

    def release_all(self, owner: SubtxnId) -> None:
        """Release everything ``owner`` holds and drop its queued requests.

        Queued requests are pruned *before* any wake-up runs: otherwise
        releasing the owner's holdings could immediately re-grant its
        own still-queued conversion request, resurrecting a lock for a
        transaction that is terminating.

        Both passes use the owner-keyed indexes, so the cost scales with
        the owner's own footprint, not with the total number of
        resources the manager has ever seen.
        """
        queued = self._queued_by_owner.get(owner)
        touched: List[_ResourceState] = []
        if queued:
            for resource in list(queued):
                state = self._resources[resource]
                for req in [r for r in state.queue if r.owner == owner]:
                    self._drop_request(state, req)
                touched.append(state)
        for resource in sorted(self._held_by_owner.pop(owner, set())):
            state = self._resources[resource]
            state.holders.pop(owner, None)
            self._wake(resource, state)
        # Dropped queue entries may unblock others even where the owner
        # held nothing (it was only queued there).  Wake in resource
        # creation order — the order the old full scan used — so grant
        # (and therefore event-completion) order is unchanged.
        for state in sorted(touched, key=lambda s: s.index):
            self._wake(state.resource, state)

    def _drop_request(self, state: _ResourceState, request: _Request) -> None:
        state.queue.remove(request)
        if request.timeout_handle is not None:
            request.timeout_handle.cancel()
        if not state.queue:
            self._contended.pop(state.resource, None)
        qmap = self._queued_by_owner.get(request.owner)
        if qmap is not None:
            count = qmap.get(state.resource, 0) - 1
            if count > 0:
                qmap[state.resource] = count
            else:
                qmap.pop(state.resource, None)
                if not qmap:
                    del self._queued_by_owner[request.owner]

    def _wake(self, resource: Resource, state: _ResourceState) -> None:
        """Grant queued requests in order until one must keep waiting."""
        progressed = True
        while progressed and state.queue:
            progressed = False
            request = state.queue[0]
            if self._grantable(state, request.owner, request.mode):
                self._drop_request(state, request)
                self._grant(state, request.owner, resource, request.mode)
                request.event.succeed(request.mode)
                progressed = True

    def _timeout(self, request: _Request) -> None:
        state = self._resources.get(request.resource)
        if state is None or request not in state.queue:
            return
        self.timeouts += 1
        self._drop_request(state, request)
        request.event.fail(
            LockTimeout(
                f"{request.owner} waited too long for {request.mode} on "
                f"{request.resource}"
            )
        )
        self._wake(request.resource, state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders(self, resource: Resource) -> Dict[SubtxnId, LockMode]:
        state = self._resources.get(resource)
        return dict(state.holders) if state else {}

    def held_by(self, owner: SubtxnId) -> Dict[Resource, LockMode]:
        result: Dict[Resource, LockMode] = {}
        for resource in self._held_by_owner.get(owner, set()):
            result[resource] = self._resources[resource].holders[owner]
        return result

    def waiting(self, resource: Resource) -> List[SubtxnId]:
        state = self._resources.get(resource)
        return [req.owner for req in state.queue] if state else []

    def wait_for_graph(self) -> Dict[SubtxnId, Set[SubtxnId]]:
        """Edges waiter → blocking holder, over all contended resources.

        Only resources with a non-empty queue are visited (via the
        ``_contended`` index); uncontended resources cannot contribute
        edges.
        """
        graph: Dict[SubtxnId, Set[SubtxnId]] = {}
        for state in self._contended.values():
            for request in state.queue:
                blockers = {
                    holder
                    for holder, held in state.holders.items()
                    if holder != request.owner and not compatible(held, request.mode)
                }
                if blockers:
                    graph.setdefault(request.owner, set()).update(blockers)
        return graph

    def find_deadlock(self) -> Optional[List[SubtxnId]]:
        """Return one wait-for cycle if any exists (diagnostics)."""
        graph = self.wait_for_graph()
        visiting: List[SubtxnId] = []
        visited: Set[SubtxnId] = set()

        def visit(node: SubtxnId) -> Optional[List[SubtxnId]]:
            if node in visiting:
                return visiting[visiting.index(node):] + [node]
            if node in visited:
                return None
            visiting.append(node)
            for successor in sorted(graph.get(node, set())):
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
            visiting.pop()
            visited.add(node)
            return None

        for node in sorted(graph):
            cycle = visit(node)
            if cycle is not None:
                return cycle
        return None

    def assert_consistent(self) -> None:
        """Internal invariant check used by property tests."""
        for resource, state in self._resources.items():
            holders = list(state.holders.items())
            for i, (owner_a, mode_a) in enumerate(holders):
                for owner_b, mode_b in holders[i + 1:]:
                    if not compatible(mode_a, mode_b):
                        raise SimulationError(
                            f"incompatible holders on {resource}: "
                            f"{owner_a}:{mode_a} vs {owner_b}:{mode_b}"
                        )
            if bool(state.queue) != (resource in self._contended):
                raise SimulationError(
                    f"contended-index out of sync for {resource}: "
                    f"queue={len(state.queue)} indexed={resource in self._contended}"
                )
            for owner in state.holders:
                if resource not in self._held_by_owner.get(owner, set()):
                    raise SimulationError(
                        f"held-by-owner index missing {owner} -> {resource}"
                    )
        queued: Dict[SubtxnId, Dict[Resource, int]] = {}
        for resource, state in self._resources.items():
            for request in state.queue:
                per = queued.setdefault(request.owner, {})
                per[resource] = per.get(resource, 0) + 1
        if queued != self._queued_by_owner:
            raise SimulationError(
                f"queued-by-owner index out of sync: "
                f"{self._queued_by_owner} != {queued}"
            )
