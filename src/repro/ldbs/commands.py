"""The DML command language and the deterministic decomposition D(O, S).

The paper's heterogeneity model says each LDBS offers "a full set of
data manipulation (e.g. SQL) commands" at the local interface (LI), and
that the LTM transforms each high-level command into a sequence of
elementary ``R``/``W`` operations via a *time-independent deterministic
decomposition function* ``D(O^i, S^i)`` over the command and the
concrete database state (the DDF assumption).

Our command vocabulary is deliberately SQL-shaped:

=================  =======================================  ==========================
Command            SQL analogue                             Decomposition
=================  =======================================  ==========================
ReadItem           SELECT ... WHERE key = k                 R(k)
ScanTable          SELECT * FROM t                          R(k) per existing row
SelectWhere        SELECT ... WHERE pred                    R(k) per existing row
InsertItem         INSERT                                   W(k)
UpdateItem         UPDATE ... WHERE key = k                 R(k) [+ W(k) if present]
UpdateWhere        UPDATE ... WHERE pred                    R(k) per row, W(matching)
DeleteItem         DELETE ... WHERE key = k                 R(k) [+ W(k) if present]
DeleteWhere        DELETE ... WHERE pred                    R(k) per row, W(matching)
=================  =======================================  ==========================

Because the decomposition depends on the concrete state (presence of
rows, predicate matches), *resubmitting* a command after another
transaction changed the state can legally yield a different elementary
sequence — this is exactly the paper's H1 example, where ``T_2`` deletes
``Y^a`` and the resubmitted ``T^a_11`` decomposes to a bare read.

Commands, predicates and update operators are small immutable values
(no closures) so they can be stored verbatim in the 2PC Agent log and
resubmitted later with identical semantics (RTT assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import DataItemId


# ----------------------------------------------------------------------
# Predicates (deterministic, serializable row filters)
# ----------------------------------------------------------------------


class Predicate:
    """Base class of row predicates; subclasses are frozen dataclasses."""

    def matches(self, key: Hashable, value: Any) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class TrueP(Predicate):
    """Matches every row."""

    def matches(self, key: Hashable, value: Any) -> bool:
        return True


@dataclass(frozen=True)
class ValueEq(Predicate):
    """Rows whose value equals ``constant``."""

    constant: Any

    def matches(self, key: Hashable, value: Any) -> bool:
        return value == self.constant


@dataclass(frozen=True)
class ValueGt(Predicate):
    """Rows whose value is greater than ``constant``."""

    constant: Any

    def matches(self, key: Hashable, value: Any) -> bool:
        try:
            return value > self.constant
        except TypeError:
            return False


@dataclass(frozen=True)
class ValueLt(Predicate):
    """Rows whose value is less than ``constant``."""

    constant: Any

    def matches(self, key: Hashable, value: Any) -> bool:
        try:
            return value < self.constant
        except TypeError:
            return False


@dataclass(frozen=True)
class KeyIn(Predicate):
    """Rows whose key belongs to a fixed set."""

    keys: FrozenSet[Hashable]

    def __init__(self, keys: Iterable[Hashable]) -> None:
        object.__setattr__(self, "keys", frozenset(keys))

    def matches(self, key: Hashable, value: Any) -> bool:
        return key in self.keys


# ----------------------------------------------------------------------
# Update operators (deterministic, serializable value transforms)
# ----------------------------------------------------------------------


class UpdateOp:
    """Base class of update operators."""

    def apply(self, value: Any) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class SetValue(UpdateOp):
    """Replace the row value with ``value``."""

    value: Any

    def apply(self, value: Any) -> Any:
        return self.value


@dataclass(frozen=True)
class AddValue(UpdateOp):
    """Add ``delta`` to a numeric row value (bank-style debit/credit)."""

    delta: Any

    def apply(self, value: Any) -> Any:
        return value + self.delta


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Command:
    """Base class of DML commands submitted at the local interface.

    Every concrete command carries its target ``table`` as the first
    field.
    """

    def is_update(self) -> bool:
        """Whether the command may write (drives lock modes)."""
        return False

    def is_scan(self) -> bool:
        """Whether the command reads the whole table (drives table locks)."""
        return False


@dataclass(frozen=True)
class ReadItem(Command):
    """``SELECT`` of a single row by key."""

    table: str
    key: Hashable



@dataclass(frozen=True)
class ScanTable(Command):
    """``SELECT *`` over a table."""

    table: str


    def is_scan(self) -> bool:
        return True


@dataclass(frozen=True)
class SelectWhere(Command):
    """``SELECT ... WHERE pred`` (reads every row, returns matches)."""

    table: str
    pred: Predicate


    def is_scan(self) -> bool:
        return True


@dataclass(frozen=True)
class InsertItem(Command):
    """``INSERT`` of a single row."""

    table: str
    key: Hashable
    value: Any


    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class UpdateItem(Command):
    """``UPDATE ... WHERE key = k`` with a deterministic operator."""

    table: str
    key: Hashable
    op: UpdateOp


    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class UpdateWhere(Command):
    """``UPDATE ... WHERE pred`` with a deterministic operator."""

    table: str
    pred: Predicate
    op: UpdateOp


    def is_update(self) -> bool:
        return True

    def is_scan(self) -> bool:
        return True


@dataclass(frozen=True)
class DeleteItem(Command):
    """``DELETE ... WHERE key = k``."""

    table: str
    key: Hashable


    def is_update(self) -> bool:
        return True


@dataclass(frozen=True)
class DeleteWhere(Command):
    """``DELETE ... WHERE pred``."""

    table: str
    pred: Predicate


    def is_update(self) -> bool:
        return True

    def is_scan(self) -> bool:
        return True


# ----------------------------------------------------------------------
# Elementary operations (the leaf level of the execution tree)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ElementaryOp:
    """One leaf-level operation produced by the decomposition.

    ``write_op`` is the update operator to apply for writes produced by
    UPDATE-style commands; inserts carry the literal value; deletes
    carry neither.
    """

    kind: str  # "R" | "W" | "D"  (D = delete-write)
    item: DataItemId
    write_value: Any = None
    write_op: Optional[UpdateOp] = None


@dataclass(frozen=True)
class CommandResult:
    """The LI-level response to one command."""

    rows: Tuple[Tuple[Hashable, Any], ...] = ()
    affected: int = 0

    @property
    def values(self) -> Tuple[Any, ...]:
        return tuple(value for _key, value in self.rows)


def validate_command(command: Command) -> None:
    """Reject malformed commands before they reach an LTM."""
    if not isinstance(command, Command):
        raise ConfigError(f"not a Command: {command!r}")
    if not command.table:
        raise ConfigError(f"command with empty table name: {command!r}")


# ----------------------------------------------------------------------
# The deterministic decomposition function D(O, S)
# ----------------------------------------------------------------------


def decompose(command: Command, store: "VersionedStoreView") -> List[ElementaryOp]:
    """Compute ``D(O, S)``: the elementary operations ``command`` performs
    against the current concrete state of ``store``.

    This is the *specification* the LTM's execution must realize: the
    DDF assumption says the mapping is a time-independent deterministic
    function of the command and the state.  Tests compare the recorded
    elementary trace of an execution against this function evaluated on
    the state the execution started from.
    """
    table = command.table
    if isinstance(command, ReadItem):
        return [ElementaryOp("R", DataItemId(table, command.key))]
    if isinstance(command, ScanTable):
        return [ElementaryOp("R", item) for item in store.scan(table)]
    if isinstance(command, SelectWhere):
        return [ElementaryOp("R", item) for item in store.scan(table)]
    if isinstance(command, InsertItem):
        return [
            ElementaryOp(
                "W", DataItemId(table, command.key), write_value=command.value
            )
        ]
    if isinstance(command, UpdateItem):
        item = DataItemId(table, command.key)
        ops = [ElementaryOp("R", item)]
        existed, _value, _writer = store.read(item)
        if existed:
            ops.append(ElementaryOp("W", item, write_op=command.op))
        return ops
    if isinstance(command, UpdateWhere):
        ops: List[ElementaryOp] = []
        for item in store.scan(table):
            ops.append(ElementaryOp("R", item))
            existed, value, _writer = store.read(item)
            if existed and command.pred.matches(item.key, value):
                ops.append(ElementaryOp("W", item, write_op=command.op))
        return ops
    if isinstance(command, DeleteItem):
        item = DataItemId(table, command.key)
        ops = [ElementaryOp("R", item)]
        existed, _value, _writer = store.read(item)
        if existed:
            ops.append(ElementaryOp("D", item))
        return ops
    if isinstance(command, DeleteWhere):
        ops = []
        for item in store.scan(table):
            ops.append(ElementaryOp("R", item))
            existed, value, _writer = store.read(item)
            if existed and command.pred.matches(item.key, value):
                ops.append(ElementaryOp("D", item))
        return ops
    raise ConfigError(f"unknown command type: {command!r}")


class VersionedStoreView:
    """Structural interface ``decompose`` needs (satisfied by
    :class:`repro.ldbs.storage.VersionedStore`)."""

    def scan(self, table: str):  # pragma: no cover - interface only
        raise NotImplementedError

    def read(self, item: DataItemId):  # pragma: no cover - interface only
        raise NotImplementedError
