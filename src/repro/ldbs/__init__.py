"""The Local Database System substrate (systems S3–S7 in DESIGN.md).

One LDBS per site, composed of:

* :mod:`repro.ldbs.storage` — versioned row store with before-images
  (the RR assumption: rollback restores concrete before-images);
* :mod:`repro.ldbs.locks` — a multi-granularity strict lock manager
  (IS/IX/S/SIX/X on tables, S/X on rows) whose strict two-phase
  discipline yields the *rigorous* histories the paper assumes (SRS);
* :mod:`repro.ldbs.commands` — the DML command language and the
  deterministic decomposition function ``D(O, S)`` (the DDF assumption);
* :mod:`repro.ldbs.dlu` — the Denied-Local-Updates guard over bound
  data;
* :mod:`repro.ldbs.ltm` — the Local Transaction Manager tying it all
  together, with unilateral-abort injection and UAN callbacks.
"""

from repro.ldbs.commands import (
    Command,
    DeleteItem,
    DeleteWhere,
    InsertItem,
    KeyIn,
    Predicate,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    AddValue,
    TrueP,
    UpdateItem,
    UpdateOp,
    UpdateWhere,
    ValueEq,
    ValueGt,
    ValueLt,
)
from repro.ldbs.dlu import BoundDataGuard, DLUPolicy
from repro.ldbs.locks import LockManager, LockMode
from repro.ldbs.sql import SqlError, parse_script, parse_sql
from repro.ldbs.ltm import LTMConfig, LocalTransactionManager, LocalTxn
from repro.ldbs.storage import Row, VersionedStore

__all__ = [
    "AddValue",
    "BoundDataGuard",
    "Command",
    "DLUPolicy",
    "DeleteItem",
    "DeleteWhere",
    "InsertItem",
    "KeyIn",
    "LTMConfig",
    "LocalTransactionManager",
    "LocalTxn",
    "LockManager",
    "LockMode",
    "Predicate",
    "ReadItem",
    "Row",
    "ScanTable",
    "SelectWhere",
    "SetValue",
    "SqlError",
    "TrueP",
    "UpdateItem",
    "UpdateOp",
    "UpdateWhere",
    "ValueEq",
    "ValueGt",
    "ValueLt",
    "VersionedStore",
    "parse_script",
    "parse_sql",
]
