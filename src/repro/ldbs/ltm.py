"""The Local Transaction Manager (system S6).

One LTM fronts one LDBS.  It realizes every assumption the paper makes
about the local systems:

* **DDF** — commands execute exactly the elementary sequence given by
  :func:`repro.ldbs.commands.decompose` evaluated on the state at
  execution time;
* **RR** — abort restores before-images via the versioned store;
* **RTT** — command semantics depend only on the values read (commands
  are pure values; no hidden clock or randomness);
* **SRS** — strict multi-granularity 2PL (all locks held to the end)
  yields rigorous histories; ``LTMConfig(rigorous=False)`` releases
  read locks after each command to produce *non*-rigorous histories for
  the ablation experiments;
* **E-autonomy / unilateral abort** — :meth:`LocalTransactionManager.
  unilaterally_abort` rolls a transaction back at any point before
  local commit, including while it is blocked on a lock, and fires the
  **UAN** callbacks the 2PC Agent subscribes to;
* **DLU** — physical writes by *local* transactions pass through the
  site's :class:`~repro.ldbs.dlu.BoundDataGuard`.

The LTM treats the original and every resubmitted local subtransaction
as completely independent transactions (each has its own
:class:`~repro.common.ids.SubtxnId`), exactly as the paper requires —
the correlation back to one global transaction lives only in the agent
and in the history checkers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    RefusalReason,
    SimulationError,
    TransactionAborted,
)
from repro.common.ids import DataItemId, SubtxnId
from repro.history.model import History
from repro.kernel.events import Event, EventKernel
from repro.kernel.process import Process, Sleep
from repro.ldbs import commands as cmd
from repro.ldbs.commands import Command, CommandResult, validate_command
from repro.ldbs.dlu import BoundDataGuard
from repro.ldbs.locks import LockManager, LockMode
from repro.ldbs.storage import VersionedStore


@dataclass(frozen=True)
class LTMConfig:
    """Tunables of one LDBS."""

    #: Simulated duration of one elementary R/W operation.
    op_duration: float = 1.0
    #: Deadlock-resolution timeout for lock waits (paper: "timeout based
    #: deadlock resolution").
    lock_timeout: Optional[float] = 200.0
    #: Strict 2PL (rigorous, the SRS assumption) when True; early
    #: read-lock release (non-rigorous) when False — ablation only.
    rigorous: bool = True
    #: Optional *active* deadlock detection: scan the wait-for graph
    #: every this many time units and unilaterally abort one victim per
    #: cycle.  ``None`` (default) leaves resolution to the timeout, as
    #: the paper assumes for 2CM; CGM-style systems turn this on to
    #: break deadlocks long before the timeout fires.
    deadlock_detection_period: Optional[float] = None


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _TxnRecord:
    handle: "LocalTxn"
    state: TxnState = TxnState.ACTIVE
    executing: Optional[Process] = None
    commands_done: int = 0
    abort_reason: Optional[RefusalReason] = None
    aborted_unilaterally: bool = False
    #: Items read or written so far (feeds the agent's bound-data set).
    access_set: List[DataItemId] = field(default_factory=list)
    #: Tables scanned so far (feeds table-level binding: a local insert
    #: into a scanned table would change the resubmitted decomposition).
    scanned_tables: List[str] = field(default_factory=list)
    #: Per-command resources whose read locks may be dropped when the
    #: LTM is configured non-rigorous.
    read_locks: List[Tuple[str, Any]] = field(default_factory=list)
    last_op_completed_at: float = 0.0


class LocalTxn:
    """Handle to one transaction at the local interface (LI)."""

    def __init__(self, ltm: "LocalTransactionManager", subtxn: SubtxnId) -> None:
        self._ltm = ltm
        self.subtxn = subtxn

    @property
    def state(self) -> TxnState:
        return self._ltm.state_of(self.subtxn)

    def execute(self, command: Command) -> Event:
        """Submit one DML command; the event yields a CommandResult."""
        return self._ltm._execute(self.subtxn, command)

    def commit(self) -> Event:
        """Attempt local commit; fails if the LTM already aborted us."""
        return self._ltm._commit(self.subtxn)

    def abort(self, reason: RefusalReason = RefusalReason.REQUESTED) -> None:
        """Roll the transaction back (no-op if already terminated)."""
        self._ltm._abort(self.subtxn, reason, unilateral=False)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<LocalTxn {self.subtxn} {self.state.value}>"


class LocalTransactionManager:
    """One site's transactional engine."""

    def __init__(
        self,
        site: str,
        kernel: EventKernel,
        history: History,
        config: Optional[LTMConfig] = None,
        dlu_guard: Optional[BoundDataGuard] = None,
    ) -> None:
        self.site = site
        self.kernel = kernel
        self.history = history
        self.config = config or LTMConfig()
        self.store = VersionedStore(site)
        self.locks = LockManager(kernel, default_timeout=self.config.lock_timeout)
        self.dlu_guard = dlu_guard
        self._txns: Dict[SubtxnId, _TxnRecord] = {}
        self._uan_callbacks: List[Callable[[SubtxnId], None]] = []
        self.unilateral_aborts = 0
        self.commits = 0
        self.aborts = 0
        self.deadlocks_broken = 0
        self._deadlock_timer: Optional["Timer"] = None
        if self.config.deadlock_detection_period is not None:
            from repro.kernel.events import Timer

            self._deadlock_timer = Timer(
                kernel,
                self.config.deadlock_detection_period,
                self._detect_deadlocks,
            )
            # Demand-driven: the scan only runs while requests wait, so
            # an idle system still quiesces.
            self.locks.on_wait = self._arm_deadlock_timer

    def _arm_deadlock_timer(self) -> None:
        if self._deadlock_timer is not None and not self._deadlock_timer.armed:
            self._deadlock_timer.start()

    def _detect_deadlocks(self) -> None:
        """Break one wait-for cycle per scan (deterministic victim)."""
        cycle = self.locks.find_deadlock()
        if cycle is not None:
            # Deterministic victim: the largest id in the cycle (the
            # "youngest" by our ordering).  Locals are plain aborts;
            # global subtransactions are unilateral (UAN fires).
            victim = max(cycle[:-1])
            self.deadlocks_broken += 1
            self._abort(
                victim,
                RefusalReason.DEADLOCK_VICTIM,
                unilateral=not victim.txn.is_local,
            )
        if self._deadlock_timer is not None and self.locks.has_waiters:
            self._deadlock_timer.restart()

    def stop_deadlock_detection(self) -> None:
        """Cancel the periodic scan (used at simulation teardown)."""
        if self._deadlock_timer is not None:
            self._deadlock_timer.cancel()
            self._deadlock_timer = None

    # ------------------------------------------------------------------
    # UAN subscription (the 2PC Agent registers here)
    # ------------------------------------------------------------------

    def on_unilateral_abort(self, callback: Callable[[SubtxnId], None]) -> None:
        """UAN assumption: notify about every unilateral abort."""
        self._uan_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, subtxn: SubtxnId) -> LocalTxn:
        """Start a new (sub)transaction; ids must never be reused."""
        if subtxn in self._txns:
            raise SimulationError(f"duplicate begin for {subtxn}")
        handle = LocalTxn(self, subtxn)
        self._txns[subtxn] = _TxnRecord(handle=handle)
        return handle

    def state_of(self, subtxn: SubtxnId) -> TxnState:
        return self._record(subtxn).state

    def abort_reason_of(self, subtxn: SubtxnId) -> Optional[RefusalReason]:
        return self._record(subtxn).abort_reason

    def is_alive(self, subtxn: SubtxnId) -> bool:
        """Paper's aliveness: all submitted commands completely executed
        and neither locally committed nor aborted."""
        record = self._txns.get(subtxn)
        return (
            record is not None
            and record.state is TxnState.ACTIVE
            and record.executing is None
        )

    def access_set_of(self, subtxn: SubtxnId) -> List[DataItemId]:
        """The items the (sub)transaction has accessed so far."""
        return list(self._record(subtxn).access_set)

    def handle_of(self, subtxn: SubtxnId) -> LocalTxn:
        """The LI handle of a known (sub)transaction (agent recovery)."""
        return self._record(subtxn).handle

    def scanned_tables_of(self, subtxn: SubtxnId) -> List[str]:
        """Tables the (sub)transaction scanned (predicate commands)."""
        return list(self._record(subtxn).scanned_tables)

    def active_txns(self) -> List[SubtxnId]:
        return sorted(
            sub for sub, rec in self._txns.items() if rec.state is TxnState.ACTIVE
        )

    def _record(self, subtxn: SubtxnId) -> _TxnRecord:
        record = self._txns.get(subtxn)
        if record is None:
            raise SimulationError(f"unknown transaction {subtxn}")
        return record

    # ------------------------------------------------------------------
    # Unilateral abort (failure injection / internal victims)
    # ------------------------------------------------------------------

    def unilaterally_abort(self, subtxn: SubtxnId) -> bool:
        """Roll back ``subtxn`` on the LTM's own initiative.

        Returns False when the transaction already terminated (a commit
        raced the failure and won — then there is nothing to abort).
        """
        record = self._txns.get(subtxn)
        if record is None or record.state is not TxnState.ACTIVE:
            return False
        self._abort(subtxn, RefusalReason.UNILATERAL, unilateral=True)
        return True

    def crash(self) -> List[SubtxnId]:
        """Site crash: the collective unilateral abort.

        The paper treats a site crash as a unilateral abort of *every*
        transaction the LDBS was running ("without making difference
        between single and collective abort (i.e. site crash)"): the
        recovery manager restores all before-images, every lock is
        released, and the UAN callbacks fire per victim.  The committed
        state survives (durability is the LDBS's own business).

        Returns the aborted subtransactions, in deterministic order.
        """
        victims = self.active_txns()
        for subtxn in victims:
            self.unilaterally_abort(subtxn)
        return victims

    def _abort(
        self, subtxn: SubtxnId, reason: RefusalReason, unilateral: bool
    ) -> None:
        record = self._txns.get(subtxn)
        if record is None or record.state is not TxnState.ACTIVE:
            return
        record.state = TxnState.ABORTED
        record.abort_reason = reason
        record.aborted_unilaterally = unilateral
        if record.executing is not None:
            record.executing.interrupt(TransactionAborted(reason, str(subtxn)))
            record.executing = None
        self.store.undo(subtxn)  # RR: restore before-images
        self.locks.release_all(subtxn)
        self.history.record_local_abort(
            self.kernel.now, subtxn, self.site, unilateral=unilateral, reason=reason
        )
        self.aborts += 1
        if unilateral:
            self.unilateral_aborts += 1
            for callback in self._uan_callbacks:
                callback(subtxn)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def _commit(self, subtxn: SubtxnId) -> Event:
        event = Event(self.kernel, name=f"commit:{subtxn}")
        record = self._txns.get(subtxn)
        if record is None:
            event.fail(SimulationError(f"unknown transaction {subtxn}"))
            return event
        if record.state is TxnState.ABORTED:
            # The LDBS "refuses to execute a COMMIT": the transaction is
            # already gone (this is the hole 2PC + resubmission plugs).
            event.fail(
                TransactionAborted(
                    record.abort_reason or RefusalReason.UNILATERAL, str(subtxn)
                )
            )
            return event
        if record.state is TxnState.COMMITTED:
            event.succeed(None)  # idempotent
            return event
        if record.executing is not None:
            event.fail(
                SimulationError(f"commit of {subtxn} while a command is executing")
            )
            return event
        record.state = TxnState.COMMITTED
        self.store.commit(subtxn)
        self.locks.release_all(subtxn)
        self.history.record_local_commit(self.kernel.now, subtxn, self.site)
        self.commits += 1
        event.succeed(None)
        return event

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    def _execute(self, subtxn: SubtxnId, command: Command) -> Event:
        validate_command(command)
        event = Event(self.kernel, name=f"exec:{subtxn}:{command}")
        record = self._txns.get(subtxn)
        if record is None:
            event.fail(SimulationError(f"unknown transaction {subtxn}"))
            return event
        if record.state is not TxnState.ACTIVE:
            event.fail(
                TransactionAborted(
                    record.abort_reason or RefusalReason.REQUESTED, str(subtxn)
                )
            )
            return event
        if record.executing is not None:
            event.fail(
                SimulationError(
                    f"{subtxn} submitted a command while one is executing"
                )
            )
            return event

        process = Process(
            self.kernel,
            self._command_body(record, subtxn, command),
            name=f"cmd:{subtxn}",
        )
        record.executing = process

        def finish(completion) -> None:
            if record.executing is process:
                record.executing = None
                record.last_op_completed_at = self.kernel.now
            if completion.error is None:
                record.commands_done += 1
                if not self.config.rigorous:
                    self._release_read_locks(record, subtxn)
                event.succeed(completion._value)
            else:
                error = completion.error
                if isinstance(error, TransactionAborted):
                    # Ensure the transaction is rolled back; a lock
                    # timeout surfaces here before any abort happened.
                    if record.state is TxnState.ACTIVE:
                        unilateral = not subtxn.txn.is_local
                        self._abort(subtxn, error.reason, unilateral=unilateral)
                event.fail(error)

        process.completion.subscribe(finish)
        return event

    def _release_read_locks(self, record: _TxnRecord, subtxn: SubtxnId) -> None:
        """Non-rigorous variant: drop S/IS locks after each command."""
        for resource in record.read_locks:
            held = self.locks.held_by(subtxn).get(resource)
            if held in (LockMode.S, LockMode.IS):
                self.locks.release(subtxn, resource)
        record.read_locks.clear()

    def _command_body(self, record: _TxnRecord, subtxn: SubtxnId, command: Command):
        """Generator realizing one command at the elementary interface.

        The locking plan:

        ===============  ==================  =======================
        Command class    Table lock          Row locks
        ===============  ==================  =======================
        point read       IS                  S on the row
        scan read        S                   (covered by S table)
        point write      IX                  X on the row
        scan write       SIX                 X on written rows
        ===============  ==================  =======================
        """
        table_resource = ("table", command.table)
        if command.is_scan() and command.is_update():
            table_mode = LockMode.SIX
        elif command.is_scan():
            table_mode = LockMode.S
        elif command.is_update():
            table_mode = LockMode.IX
        else:
            table_mode = LockMode.IS
        yield self.locks.acquire(subtxn, table_resource, table_mode)
        if table_mode in (LockMode.IS, LockMode.S):
            record.read_locks.append(table_resource)
        if command.is_scan() and command.table not in record.scanned_tables:
            record.scanned_tables.append(command.table)

        result = yield from self._run_decomposition(record, subtxn, command)
        return result

    def _run_decomposition(self, record: _TxnRecord, subtxn: SubtxnId, command):
        """Execute the elementary operations of ``command`` step by step.

        The decomposition is *interleaved* with execution (rather than
        precomputed) but is equivalent to ``decompose(command, S)`` with
        ``S`` the state at command start: the held table lock prevents
        any concurrent change that could perturb the scan set or match
        decisions for this table.
        """
        table = command.table
        rows: List[Tuple[Any, Any]] = []
        affected = 0

        if isinstance(command, cmd.ReadItem):
            item = DataItemId(table, command.key)
            yield self.locks.acquire(subtxn, ("row", item), LockMode.S)
            record.read_locks.append(("row", item))
            existed, value, _writer = yield from self._elem_read(record, subtxn, item)
            if existed:
                rows.append((command.key, value))

        elif isinstance(command, (cmd.ScanTable, cmd.SelectWhere)):
            predicate = getattr(command, "pred", None)
            for item in self.store.scan(table):
                existed, value, _writer = yield from self._elem_read(
                    record, subtxn, item
                )
                if not existed:
                    continue
                if predicate is None or predicate.matches(item.key, value):
                    rows.append((item.key, value))

        elif isinstance(command, cmd.InsertItem):
            item = DataItemId(table, command.key)
            yield self.locks.acquire(subtxn, ("row", item), LockMode.X)
            yield from self._elem_write(record, subtxn, item, command.value)
            affected = 1

        elif isinstance(command, cmd.UpdateItem):
            item = DataItemId(table, command.key)
            yield self.locks.acquire(subtxn, ("row", item), LockMode.X)
            existed, value, _writer = yield from self._elem_read(record, subtxn, item)
            if existed:
                yield from self._elem_write(
                    record, subtxn, item, command.op.apply(value)
                )
                affected = 1

        elif isinstance(command, cmd.UpdateWhere):
            for item in self.store.scan(table):
                existed, value, _writer = yield from self._elem_read(
                    record, subtxn, item
                )
                if existed and command.pred.matches(item.key, value):
                    yield self.locks.acquire(subtxn, ("row", item), LockMode.X)
                    yield from self._elem_write(
                        record, subtxn, item, command.op.apply(value)
                    )
                    affected += 1

        elif isinstance(command, cmd.DeleteItem):
            item = DataItemId(table, command.key)
            yield self.locks.acquire(subtxn, ("row", item), LockMode.X)
            existed, _value, _writer = yield from self._elem_read(record, subtxn, item)
            if existed:
                yield from self._elem_delete(record, subtxn, item)
                affected = 1

        elif isinstance(command, cmd.DeleteWhere):
            for item in self.store.scan(table):
                existed, value, _writer = yield from self._elem_read(
                    record, subtxn, item
                )
                if existed and command.pred.matches(item.key, value):
                    yield self.locks.acquire(subtxn, ("row", item), LockMode.X)
                    yield from self._elem_delete(record, subtxn, item)
                    affected += 1

        else:
            raise SimulationError(f"unknown command type {command!r}")

        return CommandResult(rows=tuple(rows), affected=affected)

    # -- elementary operations ------------------------------------------------

    def _elem_read(self, record: _TxnRecord, subtxn: SubtxnId, item: DataItemId):
        existed, value, writer = self.store.read(item)
        self.history.record_read(
            self.kernel.now, subtxn, self.site, item, read_from=writer, value=value
        )
        self._touch(record, item)
        yield Sleep(self.config.op_duration)
        return existed, value, writer

    def _elem_write(
        self, record: _TxnRecord, subtxn: SubtxnId, item: DataItemId, value
    ):
        yield from self._dlu_gate(subtxn, item)
        self.store.write(subtxn, item, value)
        self.history.record_write(
            self.kernel.now, subtxn, self.site, item, value=value
        )
        self._touch(record, item)
        yield Sleep(self.config.op_duration)

    def _elem_delete(self, record: _TxnRecord, subtxn: SubtxnId, item: DataItemId):
        yield from self._dlu_gate(subtxn, item)
        self.store.delete(subtxn, item)
        self.history.record_write(self.kernel.now, subtxn, self.site, item)
        self._touch(record, item)
        yield Sleep(self.config.op_duration)

    def _dlu_gate(self, subtxn: SubtxnId, item: DataItemId):
        """DLU check: local writers must be authorized for bound items."""
        if self.dlu_guard is not None and subtxn.txn.is_local:
            yield self.dlu_guard.authorize_local_update(item)

    def _touch(self, record: _TxnRecord, item: DataItemId) -> None:
        if item not in record.access_set:
            record.access_set.append(item)
