"""Denied Local Updates: the bound-data guard (system S7).

Paper assumption DLU: *"If a data item belongs to bound data of a
global transaction, no local transaction may update it, albeit it may
read it."*  Bound data are the items accessed by a global
subtransaction while it sits in the (agent-simulated) prepared state.

The guard is a site-level registry.  The 2PC Agent binds a
subtransaction's access set when it sends READY and unbinds it when the
subtransaction leaves the prepared state (local commit or rollback).
The LTM consults the guard immediately before a *local* transaction's
physical write; global subtransactions are exempt (their interleavings
are the certifier's job, not the guard's).

Three policies let the experiments treat DLU as the tunable assumption
it is:

* ``ABORT`` (default) — the local writer is aborted on the spot;
* ``BLOCK`` — the local writer waits until the item is unbound, subject
  to a timeout (a prepared-but-failed global subtransaction will
  resubmit and later commit, so waits do end);
* ``VIOLATE`` — enforcement off; used by the E11 ablation to show the
  paper's anomalies returning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import DLUViolation
from repro.common.ids import DataItemId, TxnId
from repro.kernel.events import Event, EventHandle, EventKernel


class DLUPolicy(enum.Enum):
    """How the guard reacts to a local update of bound data."""

    ABORT = "abort"
    BLOCK = "block"
    VIOLATE = "violate"


@dataclass
class _Waiter:
    item: DataItemId
    event: Event
    timeout_handle: Optional[EventHandle] = None


class BoundDataGuard:
    """Per-site registry of bound data with waiting support."""

    def __init__(
        self,
        kernel: EventKernel,
        policy: DLUPolicy = DLUPolicy.ABORT,
        wait_timeout: Optional[float] = 200.0,
        statically_denied_tables: frozenset = frozenset(),
    ) -> None:
        self._kernel = kernel
        self.policy = policy
        self.wait_timeout = wait_timeout
        #: Tables local transactions may never update (the CGM
        #: baseline's globally-updatable set; empty for 2CM, whose DLU
        #: only restricts *bound* data — the Sec. 6 comparison point).
        self.statically_denied_tables = frozenset(statically_denied_tables)
        self.static_denials = 0
        self._bound: Dict[DataItemId, Set[TxnId]] = {}
        #: Tables scanned by prepared transactions.  Binding whole
        #: tables closes the phantom gap: a local INSERT into a scanned
        #: table would change the resubmitted decomposition (the paper's
        #: footnote 4 assumes decompositions cannot differ under DLU,
        #: which for predicate commands requires binding the predicate
        #: extent, approximated here at table granularity).
        self._bound_tables: Dict[str, Set[TxnId]] = {}
        self._waiters: List[_Waiter] = []
        self.denials = 0
        self.blocks = 0
        self.violations_allowed = 0

    # ------------------------------------------------------------------
    # Binding (called by the 2PC Agent)
    # ------------------------------------------------------------------

    def bind(
        self,
        txn: TxnId,
        items: Iterable[DataItemId],
        tables: Iterable[str] = (),
    ) -> None:
        """Mark ``items`` (and scanned ``tables``) as bound by ``txn``."""
        for item in items:
            self._bound.setdefault(item, set()).add(txn)
        for table in tables:
            self._bound_tables.setdefault(table, set()).add(txn)

    def unbind(self, txn: TxnId) -> None:
        """Release every binding of ``txn`` and wake eligible waiters."""
        freed = [item for item, owners in self._bound.items() if txn in owners]
        for item in freed:
            owners = self._bound[item]
            owners.discard(txn)
            if not owners:
                del self._bound[item]
        freed_tables = [
            table
            for table, owners in self._bound_tables.items()
            if txn in owners
        ]
        for table in freed_tables:
            owners = self._bound_tables[table]
            owners.discard(txn)
            if not owners:
                del self._bound_tables[table]
        self._wake()

    def is_bound(self, item: DataItemId) -> bool:
        return item in self._bound or item.table in self._bound_tables

    def binders(self, item: DataItemId) -> Set[TxnId]:
        owners = set(self._bound.get(item, set()))
        owners.update(self._bound_tables.get(item.table, set()))
        return owners

    def bound_items(self) -> Set[DataItemId]:
        return set(self._bound)

    # ------------------------------------------------------------------
    # Authorization (called by the LTM for local writers)
    # ------------------------------------------------------------------

    def authorize_local_update(self, item: DataItemId) -> Event:
        """Permission event for a local transaction to update ``item``.

        Succeeds immediately when the item is unbound or the policy is
        ``VIOLATE``; fails with :class:`DLUViolation` under ``ABORT`` (or
        on a ``BLOCK`` timeout); otherwise waits for the unbind.
        """
        event = Event(self._kernel, name=f"dlu:{item}")
        if item.table in self.statically_denied_tables:
            # Static partition rule (CGM): not a waitable condition.
            self.static_denials += 1
            event.fail(
                DLUViolation(
                    f"{item} is in the globally-updatable set; local "
                    "transactions may not update it"
                )
            )
            return event
        if not self.is_bound(item):
            event.succeed(None)
            return event
        if self.policy is DLUPolicy.VIOLATE:
            self.violations_allowed += 1
            event.succeed(None)
            return event
        if self.policy is DLUPolicy.ABORT:
            self.denials += 1
            event.fail(
                DLUViolation(
                    f"{item} is bound by "
                    f"{sorted(t.label for t in self.binders(item))}"
                )
            )
            return event
        # BLOCK: wait for the unbind, bounded by the timeout.
        self.blocks += 1
        waiter = _Waiter(item=item, event=event)
        if self.wait_timeout is not None:
            waiter.timeout_handle = self._kernel.schedule(
                self.wait_timeout, lambda: self._timeout(waiter)
            )
        self._waiters.append(waiter)
        return event

    def _wake(self) -> None:
        still_waiting: List[_Waiter] = []
        for waiter in self._waiters:
            if waiter.event.done:
                continue
            if self.is_bound(waiter.item):
                still_waiting.append(waiter)
                continue
            if waiter.timeout_handle is not None:
                waiter.timeout_handle.cancel()
            waiter.event.succeed(None)
        self._waiters = still_waiting

    def _timeout(self, waiter: _Waiter) -> None:
        if waiter.event.done:
            return
        if waiter in self._waiters:
            self._waiters.remove(waiter)
        self.denials += 1
        waiter.event.fail(
            DLUViolation(f"timed out waiting for {waiter.item} to be unbound")
        )
