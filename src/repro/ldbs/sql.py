"""A miniature SQL front-end for the local interface.

The paper's heterogeneity story is about SQL at the local interface:
"each LDBS offers, at its LI, a full set of data manipulation (e.g.
SQL) commands".  This module parses a deliberately small SQL dialect
into the command objects of :mod:`repro.ldbs.commands`, so examples and
workloads can be written the way a 1992 application programmer would
have written them.

Grammar (case-insensitive keywords, single-quoted string literals,
integer literals, bare identifiers for tables)::

    SELECT * FROM <table>
    SELECT * FROM <table> WHERE KEY = <lit>
    SELECT * FROM <table> WHERE VALUE <op> <lit>        op: = < >
    INSERT INTO <table> VALUES (<lit>, <lit>)
    UPDATE <table> SET VALUE = <lit> WHERE KEY = <lit>
    UPDATE <table> SET VALUE = VALUE + <int> WHERE KEY = <lit>
    UPDATE <table> SET VALUE = VALUE - <int> WHERE KEY = <lit>
    UPDATE <table> SET VALUE = VALUE + <int> WHERE VALUE <op> <lit>
    DELETE FROM <table> WHERE KEY = <lit>
    DELETE FROM <table> WHERE VALUE <op> <lit>
    DELETE FROM <table>

Rows in this model are ``(key, value)`` pairs, so ``KEY`` and ``VALUE``
are the only addressable columns — which is exactly the granularity of
the paper's data items ("single concrete table rows").
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.ldbs.commands import (
    AddValue,
    Command,
    DeleteItem,
    DeleteWhere,
    InsertItem,
    Predicate,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    TrueP,
    UpdateItem,
    UpdateWhere,
    ValueEq,
    ValueGt,
    ValueLt,
)


class SqlError(ConfigError):
    """The statement does not belong to the supported dialect."""


_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')      # 'quoted literal'
      | (?P<number>-?\d+)               # integer
      | (?P<symbol>[(),=<>*+-])         # punctuation / operators
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)  # keyword or identifier
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "insert", "into", "values",
    "update", "set", "delete", "key", "value", "and",
}


def _tokenize(text: str) -> List[Tuple[str, Any]]:
    tokens: List[Tuple[str, Any]] = []
    position = 0
    stripped = text.strip().rstrip(";")
    while position < len(stripped):
        match = _TOKEN.match(stripped, position)
        if match is None:
            raise SqlError(f"cannot tokenize at: {stripped[position:]!r}")
        position = match.end()
        if match.lastgroup == "string":
            literal = match.group("string")[1:-1].replace("''", "'")
            tokens.append(("lit", literal))
        elif match.lastgroup == "number":
            tokens.append(("lit", int(match.group("number"))))
        elif match.lastgroup == "symbol":
            tokens.append(("sym", match.group("symbol")))
        else:
            word = match.group("word")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(("kw", lowered))
            else:
                tokens.append(("ident", word))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, Any]], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def _fail(self, why: str):
        raise SqlError(f"{why} in {self._text!r}")

    def peek(self) -> Optional[Tuple[str, Any]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> Tuple[str, Any]:
        token = self.peek()
        if token is None:
            self._fail("unexpected end of statement")
        self._index += 1
        return token

    def expect(self, kind: str, value: Any = None) -> Any:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            self._fail(f"expected {value or kind}, found {token[1]!r}")
        return token[1]

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- clauses -------------------------------------------------------

    def table(self) -> str:
        kind, value = self.next()
        if kind != "ident":
            self._fail(f"expected a table name, found {value!r}")
        return value

    def literal(self) -> Any:
        kind, value = self.next()
        if kind != "lit":
            self._fail(f"expected a literal, found {value!r}")
        return value

    def where(self) -> Tuple[str, Any]:
        """Returns ("key", literal) or ("pred", Predicate)."""
        self.expect("kw", "where")
        kind, column = self.next()
        if kind != "kw" or column not in ("key", "value"):
            self._fail("WHERE supports only KEY or VALUE")
        op = self.expect("sym")
        constant = self.literal()
        if column == "key":
            if op != "=":
                self._fail("KEY supports only equality")
            return ("key", constant)
        predicate: Predicate
        if op == "=":
            predicate = ValueEq(constant)
        elif op == ">":
            predicate = ValueGt(constant)
        elif op == "<":
            predicate = ValueLt(constant)
        else:
            self._fail(f"unsupported comparison {op!r}")
        return ("pred", predicate)


def parse_sql(text: str) -> Command:
    """Parse one SQL statement into a :class:`Command`."""
    tokens = _tokenize(text)
    if not tokens:
        raise SqlError("empty statement")
    parser = _Parser(tokens, text)
    kind, first = parser.next()
    if kind != "kw":
        raise SqlError(f"statement must start with a keyword: {text!r}")
    if first == "select":
        command = _parse_select(parser)
    elif first == "insert":
        command = _parse_insert(parser)
    elif first == "update":
        command = _parse_update(parser)
    elif first == "delete":
        command = _parse_delete(parser)
    else:
        raise SqlError(f"unsupported statement {first.upper()} in {text!r}")
    if not parser.at_end():
        parser._fail("trailing tokens")
    return command


def parse_script(text: str) -> List[Command]:
    """Parse a ``;``-separated script into commands."""
    return [
        parse_sql(statement)
        for statement in text.split(";")
        if statement.strip()
    ]


def _parse_select(parser: _Parser) -> Command:
    parser.expect("sym", "*")
    parser.expect("kw", "from")
    table = parser.table()
    if parser.at_end():
        return ScanTable(table)
    where_kind, where_value = parser.where()
    if where_kind == "key":
        return ReadItem(table, where_value)
    return SelectWhere(table, where_value)


def _parse_insert(parser: _Parser) -> Command:
    parser.expect("kw", "into")
    table = parser.table()
    parser.expect("kw", "values")
    parser.expect("sym", "(")
    key = parser.literal()
    parser.expect("sym", ",")
    value = parser.literal()
    parser.expect("sym", ")")
    return InsertItem(table, key, value)


def _parse_update(parser: _Parser) -> Command:
    table = parser.table()
    parser.expect("kw", "set")
    parser.expect("kw", "value")
    parser.expect("sym", "=")
    token = parser.next()
    if token == ("kw", "value"):
        sign = parser.expect("sym")
        if sign not in ("+", "-"):
            parser._fail(f"expected + or - after VALUE, found {sign!r}")
        delta = parser.literal()
        if not isinstance(delta, int):
            parser._fail("VALUE +/- needs an integer literal")
        op = AddValue(delta if sign == "+" else -delta)
    elif token[0] == "lit":
        op = SetValue(token[1])
    else:
        parser._fail(f"expected literal or VALUE, found {token[1]!r}")
    where_kind, where_value = parser.where()
    if where_kind == "key":
        return UpdateItem(table, where_value, op)
    return UpdateWhere(table, where_value, op)


def _parse_delete(parser: _Parser) -> Command:
    parser.expect("kw", "from")
    table = parser.table()
    if parser.at_end():
        return DeleteWhere(table, TrueP())
    where_kind, where_value = parser.where()
    if where_kind == "key":
        return DeleteItem(table, where_value)
    return DeleteWhere(table, where_value)


# ----------------------------------------------------------------------
# Rendering (the inverse of parse_sql, for logs and round-trip tests)
# ----------------------------------------------------------------------


def _render_literal(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    raise SqlError(f"cannot render literal {value!r} in SQL")


def _render_predicate(predicate: Predicate) -> str:
    if isinstance(predicate, ValueEq):
        return f"VALUE = {_render_literal(predicate.constant)}"
    if isinstance(predicate, ValueGt):
        return f"VALUE > {_render_literal(predicate.constant)}"
    if isinstance(predicate, ValueLt):
        return f"VALUE < {_render_literal(predicate.constant)}"
    if isinstance(predicate, TrueP):
        return ""
    raise SqlError(f"predicate {predicate!r} has no SQL rendering")


def to_sql(command: Command) -> str:
    """Render a command back into the dialect (``parse_sql`` inverse).

    Only the command shapes the dialect can express are supported;
    anything else raises :class:`SqlError`.
    """
    if isinstance(command, ReadItem):
        return (
            f"SELECT * FROM {command.table} "
            f"WHERE KEY = {_render_literal(command.key)}"
        )
    if isinstance(command, ScanTable):
        return f"SELECT * FROM {command.table}"
    if isinstance(command, SelectWhere):
        clause = _render_predicate(command.pred)
        if not clause:
            return f"SELECT * FROM {command.table}"
        return f"SELECT * FROM {command.table} WHERE {clause}"
    if isinstance(command, InsertItem):
        return (
            f"INSERT INTO {command.table} VALUES "
            f"({_render_literal(command.key)}, {_render_literal(command.value)})"
        )
    if isinstance(command, (UpdateItem, UpdateWhere)):
        op = command.op
        if isinstance(op, SetValue):
            assignment = f"VALUE = {_render_literal(op.value)}"
        elif isinstance(op, AddValue) and isinstance(op.delta, int):
            sign = "+" if op.delta >= 0 else "-"
            assignment = f"VALUE = VALUE {sign} {abs(op.delta)}"
        else:
            raise SqlError(f"update operator {op!r} has no SQL rendering")
        if isinstance(command, UpdateItem):
            clause = f"KEY = {_render_literal(command.key)}"
        else:
            clause = _render_predicate(command.pred)
            if not clause:
                raise SqlError("UPDATE needs a WHERE clause in this dialect")
        return f"UPDATE {command.table} SET {assignment} WHERE {clause}"
    if isinstance(command, DeleteItem):
        return (
            f"DELETE FROM {command.table} "
            f"WHERE KEY = {_render_literal(command.key)}"
        )
    if isinstance(command, DeleteWhere):
        clause = _render_predicate(command.pred)
        if not clause:
            return f"DELETE FROM {command.table}"
        return f"DELETE FROM {command.table} WHERE {clause}"
    raise SqlError(f"command {command!r} has no SQL rendering")
