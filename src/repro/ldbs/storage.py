"""Versioned row storage with before-images (system S3, RR assumption).

Rows are keyed by :class:`~repro.common.ids.DataItemId` and tagged with
the :class:`~repro.common.ids.SubtxnId` of the incarnation whose write
produced the current version (``None`` = the initial value, the paper's
hypothetical initializing transaction ``T_0``).  The writer tag is what
lets the history recorder capture the physical reads-from relation.

Undo is before-image based: each transaction's first write to an item
saves ``(existed, value, writer)``; :meth:`VersionedStore.undo` restores
them in reverse order — exactly the paper's RR assumption ("the LTM
restores the concrete before images for all data items affected").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import HistoryError
from repro.common.ids import DataItemId, SubtxnId


@dataclass
class Row:
    """One stored row version: the value and the surviving writer tag."""

    value: Any
    writer: Optional[SubtxnId] = None


@dataclass(frozen=True)
class BeforeImage:
    """Undo record for one item touched by one transaction."""

    item: DataItemId
    existed: bool
    value: Any = None
    writer: Optional[SubtxnId] = None


class VersionedStore:
    """The concrete database state ``S^i`` of one LDBS.

    The store itself is oblivious to concurrency control — the LTM is
    responsible for acquiring locks before calling into it.  All mutating
    entry points take the acting incarnation so writer tags and undo
    logs stay accurate.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self._rows: Dict[DataItemId, Row] = {}
        self._undo: Dict[SubtxnId, List[BeforeImage]] = {}
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Loading initial data
    # ------------------------------------------------------------------

    def load(self, table: str, rows: Dict[Any, Any]) -> None:
        """Install initial rows (writer tag ``None`` = ``T_0``)."""
        for key, value in rows.items():
            self._rows[DataItemId(table, key)] = Row(value=value, writer=None)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def exists(self, item: DataItemId) -> bool:
        row = self._rows.get(item)
        return row is not None and row.value is not _TOMBSTONE

    def read(self, item: DataItemId) -> Tuple[bool, Any, Optional[SubtxnId]]:
        """Return ``(existed, value, writer)`` for ``item``.

        A read of a missing row still "touches" the item (the paper's
        decompositions include the probing read); it observes the writer
        responsible for the deletion as ``None`` is indistinguishable
        from never-existed at this level, so deleted rows keep a
        tombstone carrying the deleting writer.
        """
        self.reads += 1
        row = self._rows.get(item)
        if row is None:
            return (False, None, None)
        if row.value is _TOMBSTONE:
            return (False, None, row.writer)
        return (True, row.value, row.writer)

    def scan(self, table: str) -> List[DataItemId]:
        """All *existing* rows of ``table`` in deterministic key order."""
        items = [
            item
            for item, row in self._rows.items()
            if item.table == table and row.value is not _TOMBSTONE
        ]
        return sorted(items)

    def snapshot(self, table: Optional[str] = None) -> Dict[DataItemId, Any]:
        """Copy of the visible state, for assertions and RTT checks."""
        return {
            item: row.value
            for item, row in self._rows.items()
            if row.value is not _TOMBSTONE and (table is None or item.table == table)
        }

    # ------------------------------------------------------------------
    # Writing (with undo capture)
    # ------------------------------------------------------------------

    def _save_before_image(self, writer: SubtxnId, item: DataItemId) -> None:
        log = self._undo.setdefault(writer, [])
        if any(entry.item == item for entry in log):
            return  # first-touch image already captured
        row = self._rows.get(item)
        if row is None or row.value is _TOMBSTONE:
            log.append(
                BeforeImage(
                    item=item,
                    existed=False,
                    writer=None if row is None else row.writer,
                )
            )
        else:
            log.append(
                BeforeImage(item=item, existed=True, value=row.value, writer=row.writer)
            )

    def write(self, writer: SubtxnId, item: DataItemId, value: Any) -> None:
        """Insert or overwrite ``item`` with ``value`` on behalf of ``writer``."""
        if value is _TOMBSTONE:
            raise HistoryError("use delete() to remove a row")
        self.writes += 1
        self._save_before_image(writer, item)
        self._rows[item] = Row(value=value, writer=writer)

    def delete(self, writer: SubtxnId, item: DataItemId) -> bool:
        """Delete ``item``; returns whether it existed.

        Deletion leaves a tombstone tagged with the deleting writer so a
        later read can attribute the absence (needed by the reads-from
        capture: in the paper's H1, the resubmitted ``T^a_11`` observes
        that ``Y^a`` is gone *because of* ``T_2``).
        """
        self.writes += 1
        row = self._rows.get(item)
        existed = row is not None and row.value is not _TOMBSTONE
        self._save_before_image(writer, item)
        self._rows[item] = Row(value=_TOMBSTONE, writer=writer)
        return existed

    # ------------------------------------------------------------------
    # Transaction termination
    # ------------------------------------------------------------------

    def commit(self, subtxn: SubtxnId) -> None:
        """Forget the undo log; versions become permanent."""
        self._undo.pop(subtxn, None)

    def undo(self, subtxn: SubtxnId) -> int:
        """Restore before-images in reverse order (the RR assumption).

        Returns the number of items restored.
        """
        log = self._undo.pop(subtxn, [])
        for image in reversed(log):
            if image.existed:
                self._rows[image.item] = Row(value=image.value, writer=image.writer)
            elif image.writer is None:
                self._rows.pop(image.item, None)
            else:
                self._rows[image.item] = Row(value=_TOMBSTONE, writer=image.writer)
        return len(log)

    def touched_by(self, subtxn: SubtxnId) -> List[DataItemId]:
        """Items with an undo entry for ``subtxn`` (its write set so far)."""
        return [image.item for image in self._undo.get(subtxn, [])]


class _Tombstone:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<deleted>"


_TOMBSTONE = _Tombstone()
