"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    The quickstart transfer plus its audit and history.
``scenario {H1,H2,H3,Hx} [--method M] [--timeline] [--trees]``
    Run one of the paper's worked histories and print the evidence.
``experiment {E1,E6..E14,E16..E18}``
    Run one experiment from DESIGN.md and print its table (E2–E5 are
    the scenario histories; run them via ``scenario``).
``fig2``
    Regenerate the execution trees of the paper's Fig. 2.
``report [path]``
    Run the full experiment library into one Markdown report.
``workload [--method M] [--failures P] [--globals N] ...``
    Run a random workload and print metrics + audit.
``bench [--out DIR] [--quick] [--repeat N]``
    Run the substrate perf harness; writes ``BENCH_kernel.json`` and
    ``BENCH_e2e.json`` (see docs/PERF.md).
``chaos [--seed N] [--duration T] [--wal] [--json PATH]``
    Run the seeded chaos nemesis (loss + duplication + delay spikes +
    partitions + agent crashes), heal, and assert the invariant
    battery; exit code 1 on any violation (see docs/PROTOCOL.md §7).
``overload [--seed N] [--load X] [--no-shed] [--json PATH]``
    Run the seeded overload drill (offered load far above capacity,
    admission control + deadlines + backoff + breakers defending) and
    assert the invariant battery; exit code 1 on any violation (see
    docs/PROTOCOL.md §8).
``explore [--strategy S] [--mutant M] [--replay F] [--matrix] ...``
    Deterministic schedule explorer: search the choice-point state
    space for invariant violations, shrink failing traces, write and
    replay ``.schedule`` repro files (see docs/TESTING.md).
``wal {inspect,verify,stats} PATH``
    Offline tooling for the durability subsystem's WAL directories
    (see docs/DURABILITY.md).
``serve {agent,coordinator,cluster}`` / ``storm``
    The real deployment over asyncio TCP and its workload driver
    (see docs/DEPLOY.md).
``chaos-rt [--seed N]``
    The *real-cluster* chaos drill: storm traffic through a wire-level
    fault proxy while the coordinator (or an agent) is SIGKILLed at an
    exact protocol point and one agent's disk injects an fsync
    failure; heal, drain, then the merged-journal invariant battery
    (see docs/DEPLOY.md).
``methods``
    List the method presets.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dtm import METHODS, MultidatabaseSystem, SystemConfig
from repro.history.trees import render_figure
from repro.sim import experiments
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import audit, collect_metrics
from repro.sim.report import render_table
from repro.sim.timeline import render_timeline
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx

_SCENARIOS = {"H1": run_h1, "H2": run_h2, "H3": run_h3, "Hx": run_hx}

_EXPERIMENTS = {
    "E1": (
        experiments.exp_scenario_matrix,
        "E1: scenario x method matrix",
        ["history", "method", "commit", "abort", "global-dist", "cg-cycle", "view-ser"],
    ),
    "E6": (
        experiments.exp_ci_invariant,
        "E6: Correctness Invariant",
        ["method", "runs", "ci-violations", "guarantee-failures"],
    ),
    "E7": (
        experiments.exp_restrictiveness,
        "E7: failure-free restrictiveness",
        ["method", "committed", "cert-aborts", "lock-aborts", "delays", "latency", "ok"],
    ),
    "E8": (
        experiments.exp_failure_sweep,
        "E8: unilateral-abort sensitivity",
        ["method", "p", "injected", "commit", "abort", "abort-rate", "resub", "anomalies"],
    ),
    "E9": (
        experiments.exp_drift_sweep,
        "E9: clock drift",
        ["offset", "commit", "abort", "ooo-refusals", "ok"],
    ),
    "E10": (
        experiments.exp_alive_interval_sweep,
        "E10: alive-check interval",
        ["interval", "checks", "refusals", "commit", "latency", "ok"],
    ),
    "E11": (
        experiments.exp_dlu_ablation,
        "E11: DLU ablation",
        ["policy", "denials", "allowed", "distorted-runs", "guarantee-failures"],
    ),
    "E12": (
        experiments.exp_srs_ablation,
        "E12: SRS ablation",
        ["scheduler", "rigor-violations", "guarantee-failures"],
    ),
    "E13": (
        experiments.exp_scaling,
        "E13: scaling 2CM vs CGM",
        ["sites", "method", "commit", "throughput", "latency", "p95", "delays"],
    ),
    "E14": (
        experiments.exp_interval_memory,
        "E14: alive-interval memory (negative result)",
        ["memory", "commit", "abort", "refusals", "ok"],
    ),
    "E16": (
        experiments.exp_agent_restarts,
        "E16: prepared-state durability across agent restarts",
        ["restarts", "commit", "abort", "resub", "ok"],
    ),
    "E17": (
        experiments.exp_conflict_awareness,
        "E17: conflict-aware vs conflict-blind certification",
        ["method", "wl-refusals", "wl-commits", "T3", "L4", "view-ser"],
    ),
    "E18": (
        experiments.exp_interleaving_robustness,
        "E18: interleaving robustness",
        ["method", "interleavings", "clean", "corrupted", "commit", "abort", "resub"],
    ),
}


def _cmd_demo(_args) -> int:
    from repro.common.ids import global_txn
    from repro.core.coordinator import GlobalTransactionSpec
    from repro.ldbs.commands import AddValue, UpdateItem

    system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
    system.load("a", "accounts", {"alice": 900})
    system.load("b", "accounts", {"bob": 100})
    done = system.submit(
        GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("accounts", "alice", AddValue(-250))),
                ("b", UpdateItem("accounts", "bob", AddValue(250))),
            ),
        )
    )
    system.run()
    outcome = done.value
    print(f"committed: {outcome.committed}   sn: {outcome.sn}")
    print(f"history:   {system.history.render()}")
    print()
    print(audit(system).summary())
    return 0


def _cmd_scenario(args) -> int:
    runner = _SCENARIOS[args.name]
    result = runner(args.method)
    report = result.audit
    print(f"scenario {args.name} under {args.method!r}")
    print("-" * 60)
    for txn, outcome in sorted(result.global_outcomes.items()):
        status = "commit" if outcome.committed else f"abort ({outcome.reason})"
        print(f"  {txn.label}: {status}")
    for txn, outcome in sorted(result.local_outcomes.items()):
        status = "commit" if outcome.committed else f"abort ({outcome.reason})"
        print(f"  {txn.label}: {status}")
    print()
    print(report.summary())
    if report.distortions.view_splits or report.distortions.decomposition_changes:
        print()
        print(report.distortions.describe())
    if args.explain:
        from repro.history.committed import committed_projection
        from repro.history.explain import explain

        print()
        print(explain(committed_projection(result.system.history)).render())
    if args.timeline:
        print()
        print(render_timeline(result.system.history, coalesce=args.coalesce))
    if args.trees:
        print()
        print(render_figure(result.system.history))
    return 0


def _cmd_experiment(args) -> int:
    if args.id not in _EXPERIMENTS:
        print(
            f"unknown or bench-only experiment {args.id!r}; "
            f"available here: {', '.join(sorted(_EXPERIMENTS))} "
            "(E2-E5 run via `scenario`, all via pytest benchmarks/)",
            file=sys.stderr,
        )
        return 2
    fn, title, headers = _EXPERIMENTS[args.id]
    print(render_table(title, headers, fn()))
    return 0


def _cmd_workload(args) -> int:
    sites = tuple(args.sites.split(","))
    system = MultidatabaseSystem(
        SystemConfig(
            sites=sites,
            n_coordinators=args.coordinators,
            method=args.method,
            seed=args.seed,
        )
    )
    if args.failures > 0:
        RandomFailureInjector(system, probability=args.failures, seed=args.seed)
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=sites,
            n_global=args.globals_,
            n_local=args.locals_,
            n_tables=args.tables,
            keys_per_site=args.keys,
            update_fraction=args.updates,
            seed=args.seed,
            sites_max=min(2, len(sites)),
        )
    ).generate()
    result = run_schedule(system, schedule)
    metrics = collect_metrics(system, latencies=result.commit_latencies)
    print(f"method={args.method} globals={args.globals_} failures={args.failures}")
    print(f"  committed: {metrics.global_committed}")
    print(f"  aborted:   {metrics.global_aborted}  ({metrics.aborts_by_reason})")
    print(f"  refusals:  {metrics.refusals_by_reason}")
    print(f"  resubmissions: {metrics.resubmissions}")
    print(f"  mean latency:  {metrics.mean_latency:.1f}")
    print(f"  throughput:    {metrics.throughput:.4f} txn/unit")
    print()
    print(audit(system).summary())
    return 0


def _cmd_fig2(_args) -> int:
    from repro.common.ids import global_txn, local_txn
    from repro.workload.scenarios import run_h1, run_h2, run_h3

    h1 = run_h1("naive")
    h2 = run_h2("naive")
    h3 = run_h3("naive")
    print("Fig. 2 (regenerated): examples of transactions\n")
    print(render_figure(h1.system.history, [global_txn(1), global_txn(2)]))
    print()
    print(render_figure(h2.system.history, [global_txn(3), local_txn(4, "a")]))
    print()
    print(
        render_figure(
            h3.system.history,
            [global_txn(5), global_txn(6), local_txn(7, "a"), local_txn(8, "b")],
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.sim.reportgen import write_report

    path = write_report(args.path)
    print(f"wrote {path}")
    return 0


def _cmd_methods(_args) -> int:
    for method in METHODS:
        print(method)
    return 0


def _cmd_bench(args) -> int:
    from repro.sim.perf import main as bench_main

    code = bench_main(out_dir=args.out, quick=args.quick, repeats=args.repeat)
    if code == 0 and not args.no_federation:
        from repro.rt.bench import main as federation_main

        code = federation_main(out_dir=args.out, quick=args.quick)
    return code


def _cmd_chaos(args) -> int:
    import contextlib
    import json
    import tempfile

    from repro.sim.failures import ChaosConfig, run_chaos

    with contextlib.ExitStack() as stack:
        root = None
        if args.wal:
            root = stack.enter_context(tempfile.TemporaryDirectory())
        config = ChaosConfig(
            seed=args.seed,
            duration=args.duration,
            n_global=args.globals_,
            n_local=args.locals_,
            durability_root=root,
        )
        result = run_chaos(config)
    print(result.summary())
    if args.json:
        payload = {
            "seed": result.seed,
            "ok": result.ok,
            "committed": result.committed,
            "aborted": result.aborted,
            "sim_time": result.sim_time,
            "counters": result.counters,
            "violations": [v.to_dict() for v in result.violations],
            "schedule": result.schedule_description,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def _cmd_overload(args) -> int:
    import json

    from repro.sim.overload import OverloadDrillConfig, run_overload

    config = OverloadDrillConfig(
        seed=args.seed,
        load=args.load,
        n_global=args.globals_,
        n_local=args.locals_,
        shed=not args.no_shed,
    )
    result = run_overload(config)
    print(result.summary())
    if args.json:
        payload = {
            "seed": result.seed,
            "ok": result.ok,
            "load": result.load,
            "shed": result.shed,
            "submitted": result.submitted,
            "committed": result.committed,
            "aborted": result.aborted,
            "sim_time": result.sim_time,
            "goodput": result.goodput,
            "counters": result.counters,
            "violations": [v.to_dict() for v in result.violations],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Veijalainen & Wolski (ICDE 1992) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart transfer + audit")
    sub.add_parser("methods", help="list method presets")
    sub.add_parser("fig2", help="regenerate the paper's Fig. 2 trees")
    report = sub.add_parser("report", help="run all experiments -> Markdown")
    report.add_argument("path", nargs="?", default="experiment_report.md")

    scenario = sub.add_parser("scenario", help="run a paper history")
    scenario.add_argument("name", choices=sorted(_SCENARIOS))
    scenario.add_argument("--method", default="2cm", choices=METHODS)
    scenario.add_argument("--timeline", action="store_true")
    scenario.add_argument("--explain", action="store_true")
    scenario.add_argument("--trees", action="store_true")
    scenario.add_argument("--coalesce", type=float, default=0.0)

    experiment = sub.add_parser("experiment", help="run a DESIGN.md experiment")
    experiment.add_argument("id")

    workload = sub.add_parser("workload", help="run a random workload")
    workload.add_argument("--method", default="2cm", choices=METHODS)
    workload.add_argument("--sites", default="a,b,c")
    workload.add_argument("--coordinators", type=int, default=2)
    workload.add_argument("--globals", dest="globals_", type=int, default=30)
    workload.add_argument("--locals", dest="locals_", type=int, default=0)
    workload.add_argument("--tables", type=int, default=4)
    workload.add_argument("--keys", type=int, default=32)
    workload.add_argument("--updates", type=float, default=0.6)
    workload.add_argument("--failures", type=float, default=0.0)
    workload.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench", help="run the perf harness -> BENCH_*.json artifacts"
    )
    bench.add_argument("--out", default=".", help="artifact directory")
    bench.add_argument(
        "--quick", action="store_true", help="smoke pass (fewer repeats)"
    )
    bench.add_argument(
        "--repeat", type=int, default=None, help="repeats per micro-benchmark"
    )
    bench.add_argument(
        "--no-federation",
        action="store_true",
        help="skip the live-cluster federation series (1/2/4 coordinators)",
    )

    chaos = sub.add_parser(
        "chaos", help="run the seeded chaos nemesis + invariant battery"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=3000.0)
    chaos.add_argument("--globals", dest="globals_", type=int, default=30)
    chaos.add_argument("--locals", dest="locals_", type=int, default=6)
    chaos.add_argument(
        "--wal",
        action="store_true",
        help="use real on-disk WALs (in a temp dir) + scan them after",
    )
    chaos.add_argument(
        "--json", default=None, help="write the result as JSON to this path"
    )

    overload = sub.add_parser(
        "overload", help="run the seeded overload drill + invariant battery"
    )
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument(
        "--load", type=float, default=16.0, help="offered-load multiplier"
    )
    overload.add_argument("--globals", dest="globals_", type=int, default=120)
    overload.add_argument("--locals", dest="locals_", type=int, default=12)
    overload.add_argument(
        "--no-shed",
        action="store_true",
        help="run the same storm without the overload layer (comparison)",
    )
    overload.add_argument(
        "--json", default=None, help="write the result as JSON to this path"
    )

    from repro.durability.cli import add_wal_parser

    add_wal_parser(sub)

    from repro.explore.cli import add_explore_parser

    add_explore_parser(sub)

    from repro.rt.cli import add_rt_parsers

    add_rt_parsers(sub)

    args = parser.parse_args(argv)
    if getattr(args, "run", None) is not None:
        return args.run(args)
    handlers = {
        "demo": _cmd_demo,
        "fig2": _cmd_fig2,
        "report": _cmd_report,
        "scenario": _cmd_scenario,
        "experiment": _cmd_experiment,
        "workload": _cmd_workload,
        "methods": _cmd_methods,
        "bench": _cmd_bench,
        "chaos": _cmd_chaos,
        "overload": _cmd_overload,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
