"""Discrete-event simulation kernel (system S1 in DESIGN.md).

Every component of the reproduced multidatabase — coordinators, 2PC
agents, LTMs, the network — is an *actor* driven by this kernel.  The
kernel provides:

* a deterministic event queue (:class:`EventKernel`) ordered by
  ``(time, sequence)`` so that equal-time events fire in scheduling
  order, making every run fully replayable from its seed;
* one-shot completion :class:`Event` objects that carry a value or an
  exception to subscribers;
* generator-based :class:`Process` coroutines, used by the LTM to
  express "request lock, wait for grant, perform elementary operation,
  continue" linearly; and
* cancellable :class:`Timer` helpers for the alive-check and
  commit-certification-retry timeouts of the paper's Appendix.
"""

from repro.kernel.events import Event, EventHandle, EventKernel, Timer
from repro.kernel.process import Process, Sleep

__all__ = [
    "Event",
    "EventHandle",
    "EventKernel",
    "Process",
    "Sleep",
    "Timer",
]
