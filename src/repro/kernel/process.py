"""Generator-based processes on top of the event kernel.

A :class:`Process` drives a generator that *yields* the things it wants
to wait for:

* an :class:`~repro.kernel.events.Event` — the process resumes with the
  event's value, or the event's exception is thrown into the generator
  at the yield point (this is how a lock-timeout abort interrupts a
  blocked local subtransaction);
* a :class:`Sleep` — the process resumes after the given delay.

The LTM uses processes to execute DML commands: the deterministic
decomposition function produces elementary operations, and the process
acquires the needed lock, applies the operation, then moves on — exactly
the "command by command" execution at the local interface described in
the paper's architecture section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.common.errors import SimulationError
from repro.kernel.events import Event, EventKernel


@dataclass(frozen=True)
class Sleep:
    """Yielded by a process generator to pause for ``delay`` time units."""

    delay: float


class Process:
    """Drives a generator to completion on the event kernel.

    The process itself exposes an :class:`Event` (:attr:`completion`)
    that succeeds with the generator's return value or fails with the
    exception that escaped it, so processes compose: one process may
    yield another's completion event.

    :meth:`interrupt` throws an exception into the generator at its
    current yield point — used to abort a subtransaction that is
    blocked waiting for a lock.
    """

    def __init__(
        self,
        kernel: EventKernel,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._kernel = kernel
        self._generator = generator
        self.name = name
        self.completion = Event(kernel, name=f"{name}.completion")
        self._waiting_on: Optional[Event] = None
        self._interrupted: Optional[BaseException] = None
        kernel.call_soon(lambda: self._resume(_send, None))

    @property
    def done(self) -> bool:
        return self.completion.done

    def interrupt(self, error: BaseException) -> None:
        """Throw ``error`` into the generator at its yield point.

        If the process is between resumptions (e.g. its wake-up event
        completed but the kernel has not run the continuation yet) the
        interruption is applied on the next resumption.  Interrupting a
        finished process is a silent no-op: the completion raced the
        interrupt and won.
        """
        if self.done:
            return
        if self._interrupted is None:
            self._interrupted = error
        if self._waiting_on is not None:
            # Detach: the pending event may still fire, but the resume
            # path checks ``_interrupted`` first.
            self._waiting_on = None
            self._kernel.call_soon(lambda: self._resume(_throw, self._interrupted))

    def _resume(self, mode: int, payload: Any) -> None:
        if self.done:
            return
        if self._interrupted is not None:
            mode, payload = _throw, self._interrupted
            self._interrupted = None
        try:
            if mode == _send:
                yielded = self._generator.send(payload)
            else:
                yielded = self._generator.throw(payload)
        except StopIteration as stop:
            self.completion.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagated via event
            self.completion.fail(error)
            return
        self._wait_for(yielded)

    def _wait_for(self, yielded: Any) -> None:
        if isinstance(yielded, Sleep):
            self._kernel.schedule(
                yielded.delay, lambda: self._resume(_send, None)
            )
            return
        if isinstance(yielded, Process):
            yielded = yielded.completion
        if isinstance(yielded, Event):
            self._waiting_on = yielded
            yielded.subscribe(self._on_event)
            return
        self.completion.fail(
            SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )
        )

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Interrupted while waiting; the stale wake-up is ignored.
            return
        self._waiting_on = None
        if event.error is not None:
            self._resume(_throw, event.error)
        else:
            self._resume(_send, event._value)


_send = 0
_throw = 1


def spawn(
    kernel: EventKernel,
    generator: Generator[Any, Any, Any],
    name: str = "",
    on_done: Optional[Callable[[Event], None]] = None,
) -> Process:
    """Convenience: create a process and optionally watch its completion."""
    process = Process(kernel, generator, name=name)
    if on_done is not None:
        process.completion.subscribe(on_done)
    return process
