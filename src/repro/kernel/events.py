"""The event queue, one-shot events and timers.

The kernel is intentionally small: a binary heap of ``(time, seq,
handle)`` entries plus a monotonically increasing sequence counter.
Determinism matters more than speed here — the correctness experiments
replay adversarial interleavings, so two runs with the same seed must
produce byte-identical histories.

Hot-path design notes (the substrate underneath every experiment):

* Heap entries are plain ``(time, seq, handle)`` tuples, so ``heapq``
  orders them with C-level tuple comparisons instead of calling a
  Python ``__lt__`` per comparison.  ``seq`` is unique, so the handle
  itself is never compared.
* ``pending`` is O(1): the kernel keeps a live-event counter updated on
  schedule/fire/cancel rather than scanning the heap.  The driver polls
  it on every drain iteration.
* Cancelled entries stay in the heap as *tombstones* until popped — or
  until they outnumber the live entries, at which point the heap is
  compacted in place (filter + ``heapify``, amortised O(1) per cancel).
* :class:`Timer` re-arms without heap churn: a restart only bumps the
  stored deadline; the already-queued entry acts as a carrier that
  re-dispatches itself on expiry.  Sequence numbers are still allocated
  at restart time, so firing order is byte-identical to the naive
  cancel-and-push implementation.

Choice points: installing a :attr:`EventKernel.chooser` turns every
nondeterministic decision into an explicit, recordable choice.  The
kernel itself only has one — which of several *same-time* events fires
first (``choose("tie", k)``) — but any component may route its own
decisions (fault injection, crash points, unilateral aborts) through
:meth:`EventKernel.choose`.  With no chooser installed every call
returns option 0 and the drain loop takes the untouched fast path, so
default-configuration histories stay byte-identical.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError

#: Compact the heap when tombstones exceed half of it (but never bother
#: below this floor — tiny heaps are cheap to scan).
_COMPACT_MIN = 64


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "_callback", "_cancelled", "_fired", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        kernel: Optional["EventKernel"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self._callback = callback
        self._cancelled = False
        self._fired = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        self._callback = _noop
        if self._kernel is not None:
            self._kernel._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            self._callback()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _noop() -> None:
    return None


class EventKernel:
    """Deterministic discrete-event loop.

    ``schedule`` inserts a callback ``delay`` time units in the future;
    ``run`` drains the queue in ``(time, seq)`` order.  Simulated time is
    a float; callbacks observe it via :attr:`now`.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_fired = 0
        self._live = 0
        self._tombstones = 0
        #: Optional decision oracle (duck-typed: ``choose(kind, n,
        #: context) -> int``).  ``None`` — the default — keeps the
        #: seq-order drain and makes :meth:`choose` a constant 0.
        self.chooser: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled callbacks.

        O(1): maintained as a counter, not a heap scan — the driver
        reads this on every iteration of its drain loop.
        """
        return self._live

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    # -- choice points -------------------------------------------------

    def choose(self, kind: str, n: int, context: Any = None) -> int:
        """Resolve one nondeterministic decision with ``n`` options.

        Option 0 is always the *default* — the behaviour the system
        exhibits with no chooser installed.  Components present their
        alternatives (fire this tied event, drop this message, crash at
        this point, …) as options ``1..n-1``; the installed chooser
        picks one, and the pick is its to record.  ``kind`` is a stable
        label (``"tie"``, ``"msg:PREPARE"``, ``"crash"``, …) so
        strategies can weight decision classes differently; ``context``
        is diagnostics-only.

        With no chooser, or with fewer than two options, this is a
        constant 0 and nothing is recorded — default runs stay
        byte-identical.
        """
        if n <= 1 or self.chooser is None:
            return 0
        choice = self.chooser.choose(kind, n, context)
        if not 0 <= choice < n:
            raise SimulationError(
                f"chooser returned {choice} for {kind!r} with {n} options"
            )
        return choice

    # -- internal plumbing ---------------------------------------------

    def _alloc_seq(self) -> int:
        """Reserve one sequence number (Timer re-arm bookkeeping)."""
        return next(self._seq)

    def _schedule_preallocated(
        self, time: float, seq: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Enqueue an entry under a sequence number reserved earlier.

        Used by :class:`Timer` so that a deferred re-arm fires at exactly
        the ``(time, seq)`` slot a cancel-and-push implementation would
        have used — keeping histories byte-identical.
        """
        handle = EventHandle(time, seq, callback, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def _note_cancelled(self) -> None:
        """Account for one live entry turning into a tombstone."""
        self._live -= 1
        self._tombstones += 1
        if self._tombstones > _COMPACT_MIN and self._tombstones * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones and re-heapify (in place: ``run`` holds an alias)."""
        self._queue[:] = [
            entry for entry in self._queue if not entry[2]._cancelled
        ]
        heapq.heapify(self._queue)
        self._tombstones = 0

    def _next_live_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled entry (pops tombstones)."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2]._cancelled:
                heapq.heappop(queue)
                self._tombstones -= 1
                continue
            return entry[0]
        return None

    # -- draining ------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        advance: bool = True,
    ) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when the next event lies beyond
        ``until``, or after ``max_events`` callbacks.  Returns the
        simulated time reached.

        Contract for ``now`` on return (with ``advance=True``, the
        default):

        * queue drained, or next event beyond ``until`` → ``now`` is
          ``until`` (when given and later than the last event);
        * stopped by ``max_events`` with live work still due at or
          before ``until`` → ``now`` is the time of the last fired
          event (the stop is genuinely early);
        * stopped by ``max_events`` but nothing live remains at or
          before ``until`` → ``now`` still advances to ``until``,
          exactly as if the queue had drained naturally.

        ``advance=False`` suppresses every fast-forward: ``now`` is left
        at the last fired event, which lets a caller use ``until`` as a
        pure safety bound without distorting the quiescence time.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            if self.chooser is not None:
                return self._drain_chosen(until, max_events, advance)
            if until is None and max_events is None:
                # Unbounded drain (the overwhelmingly common call): no
                # per-event bound checks, pop straight off the heap.
                while queue:
                    entry = pop(queue)
                    handle = entry[2]
                    if handle._cancelled:
                        self._tombstones -= 1
                        continue
                    self._live -= 1
                    handle._fired = True
                    self._now = entry[0]
                    handle._callback()
                    fired += 1
                return self._now
            while True:
                if not queue:
                    if advance and until is not None and until > self._now:
                        self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    if advance and until is not None and until > self._now:
                        nxt = self._next_live_time()
                        if nxt is None or nxt > until:
                            self._now = until
                    break
                time, seq, handle = queue[0]
                if handle._cancelled:
                    pop(queue)
                    self._tombstones -= 1
                    continue
                if until is not None and time > until:
                    if advance and until > self._now:
                        self._now = until
                    break
                pop(queue)
                self._live -= 1
                handle._fired = True
                self._now = time
                handle._callback()
                fired += 1
            return self._now
        finally:
            self._running = False
            self._events_fired += fired

    def _drain_chosen(
        self,
        until: Optional[float],
        max_events: Optional[int],
        advance: bool,
    ) -> float:
        """Drain with every same-time tie resolved by the chooser.

        Entries due at exactly the same simulated time are popped as a
        batch; ``choose("tie", k)`` picks which fires, the rest go back
        on the heap at their original ``(time, seq)`` slots.  Option 0
        is the lowest sequence number — the exact event the default
        drain would have fired — so an all-defaults chooser reproduces
        the fast path event for event.  Stop conditions mirror
        :meth:`run`'s bounded loop.  Deliberately not hot-path-tuned:
        exploration runs are small.
        """
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        try:
            while True:
                head = self._next_live_time()
                if head is None:
                    if advance and until is not None and until > self._now:
                        self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    if advance and until is not None and until > self._now:
                        if head > until:
                            self._now = until
                    break
                if until is not None and head > until:
                    if advance and until > self._now:
                        self._now = until
                    break
                batch = []
                while queue and queue[0][0] == head:
                    entry = pop(queue)
                    if entry[2]._cancelled:
                        self._tombstones -= 1
                        continue
                    batch.append(entry)
                idx = 0
                if len(batch) > 1:
                    idx = self.choose("tie", len(batch))
                for i, entry in enumerate(batch):
                    if i != idx:
                        push(queue, entry)
                time, _seq, handle = batch[idx]
                self._live -= 1
                handle._fired = True
                self._now = time
                handle._callback()
                fired += 1
            return self._now
        finally:
            self._events_fired += fired

    def step(self) -> bool:
        """Fire exactly one event; return ``False`` if none were pending."""
        before = self._events_fired
        self.run(max_events=1)
        return self._events_fired > before


class Event:
    """A one-shot completion event carrying a value or an exception.

    Used wherever a component must wait for an asynchronous outcome: a
    lock grant, a message round-trip, a subtransaction result.  Exactly
    one of :meth:`succeed` / :meth:`fail` may be called; subscribers are
    notified through the kernel (never synchronously inside the call) so
    that completion order remains deterministic.

    ``name`` is diagnostics-only and may be any object; it is rendered
    with ``repr`` solely inside error messages, so hot paths can pass a
    cheap tuple instead of formatting a string per event.
    """

    __slots__ = ("_kernel", "_done", "_value", "_error", "_callbacks", "name")

    def __init__(self, kernel: EventKernel, name: Any = "") -> None:
        self._kernel = kernel
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        """True when completed successfully."""
        return self._done and self._error is None

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    @property
    def value(self) -> Any:
        """The success value; raises the stored exception on failure."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} not completed yet")
        if self._error is not None:
            raise self._error
        return self._value

    def succeed(self, value: Any = None) -> None:
        self._complete(value, None)

    def fail(self, error: BaseException) -> None:
        self._complete(None, error)

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} completed twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._kernel.call_soon(lambda cb=callback: cb(self))

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(self)`` once the event completes.

        If the event already completed, the callback is scheduled
        immediately (still through the kernel, preserving determinism).
        """
        if self._done:
            self._kernel.call_soon(lambda: callback(self))
        else:
            self._callbacks.append(callback)


class Timer:
    """A restartable timer built on :class:`EventKernel`.

    Models the paper's *alive check interval timeout* and *commit
    certification retry timeout*: ``start`` (or ``restart``) schedules
    the callback once; ``cancel`` stops it.  The owner restarts it after
    handling each expiry, which matches the Appendix pseudo-code's
    "set the ... timeout; return to prepared state" steps.

    Restart is churn-free: instead of tombstoning the queued entry and
    pushing a fresh one per restart (which floods the heap under the
    agents' per-message alive-check restarts), the timer keeps exactly
    one entry in the heap — a *carrier*.  A restart merely reserves a
    sequence number and records the new deadline; when the carrier
    expires early it re-dispatches itself at the recorded ``(deadline,
    seq)``, which is precisely the slot the cancel-and-push scheme would
    have occupied, so event order is unchanged.
    """

    def __init__(
        self,
        kernel: EventKernel,
        interval: float,
        callback: Callable[[], None],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        self._kernel = kernel
        self.interval = interval
        self._callback = callback
        #: The heap entry currently carrying the timer (may sit at an
        #: out-of-date time; the authoritative expiry is ``_deadline``).
        self._handle: Optional[EventHandle] = None
        self._deadline: Optional[float] = None
        self._seq: Optional[int] = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    def start(self) -> None:
        """Arm the timer for one expiry ``interval`` from now."""
        kernel = self._kernel
        deadline = kernel._now + self.interval
        seq = kernel._alloc_seq()
        self._deadline = deadline
        self._seq = seq
        carrier = self._handle
        if (
            carrier is not None
            and not carrier._cancelled
            and not carrier._fired
            and carrier.time <= deadline
        ):
            # Churn-free path: the queued entry will re-dispatch at the
            # new (deadline, seq) when it pops.  Nothing to push now.
            return
        self._handle = kernel._schedule_preallocated(deadline, seq, self._expire)

    restart = start

    def cancel(self) -> None:
        self._deadline = None
        self._seq = None
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        deadline = self._deadline
        if deadline is None:  # cancelled; stale carrier (defensive)
            self._handle = None
            return
        if deadline > self._kernel._now:
            # A restart moved the deadline out while we sat in the heap:
            # re-dispatch at the reserved (deadline, seq) slot.
            self._handle = self._kernel._schedule_preallocated(
                deadline, self._seq, self._expire
            )
            return
        self._handle = None
        self._deadline = None
        self._seq = None
        self._callback()
