"""The event queue, one-shot events and timers.

The kernel is intentionally small: a binary heap of ``(time, seq,
callback)`` entries plus a monotonically increasing sequence counter.
Determinism matters more than speed here — the correctness experiments
replay adversarial interleavings, so two runs with the same seed must
produce byte-identical histories.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "_callback", "_cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._cancelled = True
        self._callback = _noop

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            self._callback()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _noop() -> None:
    return None


class EventKernel:
    """Deterministic discrete-event loop.

    ``schedule`` inserts a callback ``delay`` time units in the future;
    ``run`` drains the queue in ``(time, seq)`` order.  Simulated time is
    a float; callbacks observe it via :attr:`now`.
    """

    def __init__(self) -> None:
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled callbacks."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback)
        heapq.heappush(self._queue, handle)
        return handle

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (time then advances exactly to ``until``), or after
        ``max_events`` callbacks.  Returns the simulated time reached.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                handle = self._queue[0]
                if handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and handle.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = handle.time
                handle._fire()
                self._events_fired += 1
                fired += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Fire exactly one event; return ``False`` if none were pending."""
        before = self._events_fired
        self.run(max_events=1)
        return self._events_fired > before


class Event:
    """A one-shot completion event carrying a value or an exception.

    Used wherever a component must wait for an asynchronous outcome: a
    lock grant, a message round-trip, a subtransaction result.  Exactly
    one of :meth:`succeed` / :meth:`fail` may be called; subscribers are
    notified through the kernel (never synchronously inside the call) so
    that completion order remains deterministic.
    """

    __slots__ = ("_kernel", "_done", "_value", "_error", "_callbacks", "name")

    def __init__(self, kernel: EventKernel, name: str = "") -> None:
        self._kernel = kernel
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def ok(self) -> bool:
        """True when completed successfully."""
        return self._done and self._error is None

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    @property
    def value(self) -> Any:
        """The success value; raises the stored exception on failure."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} not completed yet")
        if self._error is not None:
            raise self._error
        return self._value

    def succeed(self, value: Any = None) -> None:
        self._complete(value, None)

    def fail(self, error: BaseException) -> None:
        self._complete(None, error)

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} completed twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._kernel.call_soon(lambda cb=callback: cb(self))

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(self)`` once the event completes.

        If the event already completed, the callback is scheduled
        immediately (still through the kernel, preserving determinism).
        """
        if self._done:
            self._kernel.call_soon(lambda: callback(self))
        else:
            self._callbacks.append(callback)


class Timer:
    """A restartable timer built on :class:`EventKernel`.

    Models the paper's *alive check interval timeout* and *commit
    certification retry timeout*: ``start`` (or ``restart``) schedules
    the callback once; ``cancel`` stops it.  The owner restarts it after
    handling each expiry, which matches the Appendix pseudo-code's
    "set the ... timeout; return to prepared state" steps.
    """

    def __init__(
        self,
        kernel: EventKernel,
        interval: float,
        callback: Callable[[], None],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        self._kernel = kernel
        self.interval = interval
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self) -> None:
        """Arm the timer for one expiry ``interval`` from now."""
        self.cancel()
        self._handle = self._kernel.schedule(self.interval, self._expire)

    restart = start

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        self._handle = None
        self._callback()
