"""repro — a reproduction of Veijalainen & Wolski, "Prepare and Commit
Certification for Decentralized Transaction Management in Rigorous
Heterogeneous Multidatabases" (ICDE 1992).

The package implements the paper's fully decentralized Distributed
Transaction Manager — the **2PC Agent Certifier method** — together
with every substrate it needs (rigorous local database systems, a 2PC
network, drifting site clocks), the baselines it is compared against
(the Commit Graph Method, naive resubmission, predefined total order),
and the correctness machinery its guarantees are stated in (committed
projections, serialization and commit-order graphs, an exact view-
serializability checker, distortion detectors).

Quick start::

    from repro import (
        GlobalTransactionSpec, MultidatabaseSystem, SystemConfig,
        ReadItem, UpdateItem, AddValue, global_txn, audit,
    )

    system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
    system.load("a", "acct", {"X": 100})
    system.load("b", "acct", {"Z": 10})
    done = system.submit(GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("a", UpdateItem("acct", "X", AddValue(-5))),
            ("b", UpdateItem("acct", "Z", AddValue(5))),
        ),
    ))
    system.run()
    assert done.value.committed
    assert audit(system).ok

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced artifact.
"""

from repro.common.errors import (
    CertificationRefused,
    ConfigError,
    DLUViolation,
    LockTimeout,
    RefusalReason,
    ReproError,
    TransactionAborted,
)
from repro.common.ids import (
    DataItemId,
    SerialNumber,
    SubtxnId,
    TxnId,
    global_txn,
    local_txn,
)
from repro.core.agent import AgentConfig, TwoPCAgent
from repro.core.certifier import Certifier, CertifierConfig, CommitOrderPolicy
from repro.core.coordinator import (
    AbortRequested,
    Coordinator,
    GlobalOutcome,
    GlobalTransactionSpec,
)
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.core.intervals import AliveInterval
from repro.core.serial import CentralCounterSN, LamportSN, RealTimeClockSN, SiteClock
from repro.history.committed import committed_projection
from repro.history.distortion import find_distortions
from repro.history.graphs import commit_order_graph, serialization_graph
from repro.history.model import History, OpKind, Operation
from repro.history.rigor import check_rigorous
from repro.history.viewser import check_view_serializable
from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    DeleteWhere,
    InsertItem,
    KeyIn,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    TrueP,
    UpdateItem,
    UpdateWhere,
    ValueEq,
    ValueGt,
    ValueLt,
)
from repro.ldbs.dlu import DLUPolicy
from repro.ldbs.sql import SqlError, parse_script, parse_sql
from repro.ldbs.ltm import LTMConfig
from repro.net.network import LatencyModel
from repro.sim.driver import SimulationResult, run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import audit, collect_metrics
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx

__version__ = "1.0.0"

__all__ = [
    "AbortRequested",
    "AddValue",
    "AgentConfig",
    "AliveInterval",
    "CentralCounterSN",
    "CertificationRefused",
    "Certifier",
    "CertifierConfig",
    "CommitOrderPolicy",
    "ConfigError",
    "Coordinator",
    "DLUPolicy",
    "DLUViolation",
    "DataItemId",
    "DeleteItem",
    "DeleteWhere",
    "GlobalOutcome",
    "GlobalTransactionSpec",
    "History",
    "InsertItem",
    "KeyIn",
    "LTMConfig",
    "LamportSN",
    "LatencyModel",
    "LockTimeout",
    "MultidatabaseSystem",
    "OpKind",
    "Operation",
    "RandomFailureInjector",
    "ReadItem",
    "RealTimeClockSN",
    "RefusalReason",
    "ReproError",
    "ScanTable",
    "SelectWhere",
    "SerialNumber",
    "SetValue",
    "SimulationResult",
    "SiteClock",
    "SubtxnId",
    "SystemConfig",
    "TransactionAborted",
    "TrueP",
    "TwoPCAgent",
    "TxnId",
    "UpdateItem",
    "UpdateWhere",
    "ValueEq",
    "ValueGt",
    "ValueLt",
    "WorkloadConfig",
    "WorkloadGenerator",
    "audit",
    "check_rigorous",
    "check_view_serializable",
    "collect_metrics",
    "commit_order_graph",
    "committed_projection",
    "find_distortions",
    "SqlError",
    "global_txn",
    "local_txn",
    "parse_script",
    "parse_sql",
    "run_h1",
    "run_h2",
    "run_h3",
    "run_hx",
    "run_schedule",
    "serialization_graph",
]
