"""Identifiers used throughout the reproduction.

The paper's notation is kept as close as practical:

* a *global transaction* ``T_k`` is identified by a :class:`TxnId` with
  ``is_local=False``;
* a *local transaction* ``L_o`` (submitted directly to one LTM, invisible
  to the DTM) is a :class:`TxnId` with ``is_local=True`` and a home site;
* the *j-th local subtransaction* of ``T_k`` at site ``i`` (``T^i_kj`` in
  the paper — ``j`` grows by one per resubmission) is a
  :class:`SubtxnId`;
* a *serial number* ``SN(k)`` (Sec. 5.2) is a :class:`SerialNumber`,
  totally ordered first by (possibly drifting) site-clock reading, then
  by the coordinating site identifier, then by a per-coordinator
  sequence number that makes it unique even for identical clock
  readings.

Data items ``X^s`` (single concrete table rows at site ``s``) are
modelled by :class:`DataItemId` (``table``, ``key``); the owning site is
implicit in which LDBS stores the row, and :func:`qualified_item`
produces the site-qualified form used by the global history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True, order=True)
class TxnId:
    """Identity of a transaction (global ``T_k`` or local ``L_o``).

    The natural sort order (``number``, ``is_local``, ``site``) is only
    used for stable, deterministic iteration — it carries no protocol
    meaning.  Protocol ordering is carried by :class:`SerialNumber`.
    """

    number: int
    is_local: bool = False
    #: Home site for local transactions; ``None`` for global ones.
    site: Optional[str] = None
    #: Cached hash — transaction ids key nearly every dict in the
    #: system, and the dataclass-generated hash rebuilds a tuple per
    #: call.
    _hash: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.is_local and self.site is None:
            raise ValueError("a local transaction needs a home site")
        if not self.is_local and self.site is not None:
            raise ValueError("a global transaction has no home site")
        object.__setattr__(
            self, "_hash", hash((self.number, self.is_local, self.site))
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed in
        # the *unpickling* process: str hashes are salted per process,
        # so a hash cached before a pickle boundary (journal replay,
        # wire transfer) would poison set/dict lookups after it.
        return (self.__class__, (self.number, self.is_local, self.site))

    @property
    def label(self) -> str:
        """Paper-style label: ``T1`` for global, ``L4`` for local."""
        prefix = "L" if self.is_local else "T"
        return f"{prefix}{self.number}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


def global_txn(number: int) -> TxnId:
    """Shorthand for the id of global transaction ``T<number>``."""
    return TxnId(number=number, is_local=False)


def local_txn(number: int, site: str) -> TxnId:
    """Shorthand for the id of local transaction ``L<number>`` at ``site``."""
    return TxnId(number=number, is_local=True, site=site)


@dataclass(frozen=True, order=True)
class SubtxnId:
    """Identity of one *incarnation* of a local subtransaction.

    ``T^i_kj`` in the paper: global transaction ``txn`` (= ``T_k``), site
    ``site`` (= ``i``), resubmission index ``incarnation`` (= ``j``; 0
    for the original submission).  Local transactions are modelled as a
    single incarnation at their home site so that the history machinery
    can treat every executed piece of work uniformly.
    """

    txn: TxnId
    site: str
    incarnation: int = 0
    _hash: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.txn, self.site, self.incarnation))
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # See TxnId.__reduce__: never let a cached hash cross a pickle
        # boundary.
        return (self.__class__, (self.txn, self.site, self.incarnation))

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``T^a_10`` for txn 1, site a, inc 0."""
        if self.txn.is_local:
            return f"{self.txn.label}^{self.site}"
        return f"{self.txn.label}{self.incarnation}^{self.site}"

    def resubmitted(self) -> "SubtxnId":
        """The id of the next incarnation (after one more resubmission)."""
        return SubtxnId(self.txn, self.site, self.incarnation + 1)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True, order=True)
class SerialNumber:
    """A globally unique serial number ``SN(k)`` (paper Sec. 5.2).

    Drawn from a totally ordered set: ordered by the coordinating site's
    clock reading at global-Commit time, with the site identifier and a
    per-coordinator sequence number as tie-breakers.  Clock drift between
    sites therefore only perturbs the *order* (causing unnecessary
    aborts at worst), never uniqueness.
    """

    clock: float
    site: str
    seq: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"SN({self.clock:g}@{self.site}#{self.seq})"


@dataclass(frozen=True, order=True)
class DataItemId:
    """A single concrete row: ``(table, key)`` within one LDBS."""

    table: str
    key: Hashable = field(compare=False)
    #: Sortable rendering of ``key`` used for ordering and hashing, so
    #: that heterogeneous key types still produce a deterministic order.
    _key_repr: str = field(init=False, compare=True, repr=False)

    _hash: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key_repr", repr(self.key))
        object.__setattr__(self, "_hash", hash((self.table, self._key_repr)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # See TxnId.__reduce__: never let a cached hash cross a pickle
        # boundary.
        return (self.__class__, (self.table, self.key))

    @property
    def label(self) -> str:
        return f"{self.table}[{self.key!r}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


def qualified_item(site: str, item: DataItemId) -> Tuple[str, DataItemId]:
    """Site-qualified data item (``X^s`` in the paper)."""
    return (site, item)
