"""Exception hierarchy for the reproduction.

Exceptions are used for *local* control flow (e.g. a lock timeout aborts
the waiting subtransaction); protocol-level refusals travel as 2PC
messages, but carry a :class:`RefusalReason` so benchmarks can break
abort counts down by cause.
"""

from __future__ import annotations

import enum
from typing import Optional


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an internal inconsistency."""


class HistoryError(ReproError):
    """A recorded history is malformed or a checker precondition fails."""


class RefusalReason(enum.Enum):
    """Why a certifier refused (or an LTM aborted) a subtransaction.

    The first three correspond to the three abort sources in the paper's
    Appendix algorithms; the rest come from the substrate.
    """

    #: Basic prepare certification: empty alive-interval intersection.
    ALIVE_INTERSECTION = "alive-intersection"
    #: Extended prepare certification: an "older" (bigger-SN) subtxn has
    #: already committed locally (PREPARE out of order, Sec. 5.3).
    PREPARE_OUT_OF_ORDER = "prepare-out-of-order"
    #: The subtransaction was found unilaterally aborted during the
    #: prepare certification's alive check.
    NOT_ALIVE = "not-alive"
    #: Lock wait exceeded the deadlock timeout.
    LOCK_TIMEOUT = "lock-timeout"
    #: A local wait-for-graph deadlock detector chose this victim.
    DEADLOCK_VICTIM = "deadlock-victim"
    #: The LTM unilaterally aborted the transaction (failure injection).
    UNILATERAL = "unilateral-abort"
    #: The DLU guard rejected a local update to bound data.
    DLU = "dlu-violation"
    #: The CGM baseline refused to commit because the commit graph would
    #: become cyclic.
    COMMIT_GRAPH_CYCLE = "commit-graph-cycle"
    #: The CGM baseline's data partition was violated (a global touched
    #: the locally-updatable set the wrong way, or a local updated the
    #: globally-updatable set).
    PARTITION = "partition-violation"
    #: The ticket baseline observed an out-of-order local serialization.
    TICKET_ORDER = "ticket-order"
    #: The application or coordinator requested the abort.
    REQUESTED = "requested"
    #: The coordinator gave up on a site that stopped answering (crash
    #: injection / vote or result timeout), or an agent refused because
    #: a restart wiped the transaction's volatile state.
    SITE_UNREACHABLE = "site-unreachable"
    #: The failure detector suspects the site; the coordinator refuses
    #: new global transactions touching it instead of letting them hang
    #: (graceful degradation — lifted when the site is heard from again).
    SITE_QUARANTINED = "site-quarantined"
    #: Admission control shed the transaction at BEGIN: the coordinator's
    #: in-flight-globals budget was full (overload survival — refuse
    #: early instead of queueing unboundedly).
    OVERLOADED = "overloaded"
    #: The transaction's deadline passed before it could be prepared or
    #: committed; expired work is aborted, never prepared.
    DEADLINE_EXPIRED = "deadline-expired"
    #: A prepared subtransaction exhausted its resubmission budget and
    #: the agent escalated (GIVEUP) to a coordinator-driven global abort.
    RESUBMIT_BUDGET = "resubmit-budget"
    #: The per-site circuit breaker is open: the site's recent error
    #: rate crossed the threshold and new work is refused until a
    #: half-open probe succeeds.
    SITE_BREAKER_OPEN = "site-breaker-open"
    #: Federation routing: the BEGIN reached a coordinator that does not
    #: own the transaction's shard (stale shard map, or a deposed owner
    #: after a handoff).  The refusal carries a redirect hint naming the
    #: owning coordinator so the client can resubmit without a retry
    #: storm.
    WRONG_SHARD = "wrong-shard"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AgentCrashed(ReproError):
    """A crash probe fired: the 2PC Agent died mid-handler.

    Raised to unwind the in-flight message handler exactly where the
    crash was injected — everything the handler would have done after
    the kill point never happens, like a real process death.  Caught at
    the agent's event-loop boundaries, never propagated to the kernel.
    """

    def __init__(self, site: str, point: str, txn: object = None) -> None:
        self.site = site
        self.point = point
        self.txn = txn
        super().__init__(f"agent {site} crashed at {point} ({txn})")


class TransactionAborted(ReproError):
    """A (sub)transaction was aborted; carries the cause."""

    def __init__(self, reason: RefusalReason, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        message = str(reason) if not detail else f"{reason}: {detail}"
        super().__init__(message)


class LockTimeout(TransactionAborted):
    """A lock request waited longer than the deadlock timeout."""

    def __init__(self, detail: str = "") -> None:
        super().__init__(RefusalReason.LOCK_TIMEOUT, detail)


class DLUViolation(TransactionAborted):
    """A local transaction attempted to update bound data (DLU)."""

    def __init__(self, detail: str = "") -> None:
        super().__init__(RefusalReason.DLU, detail)


class CertificationRefused(TransactionAborted):
    """A certifier refused to move/keep a subtransaction forward."""

    def __init__(self, reason: RefusalReason, detail: str = "") -> None:
        super().__init__(reason, detail)


def reason_of(exc: Optional[BaseException]) -> Optional[RefusalReason]:
    """Extract the :class:`RefusalReason` from an exception, if any."""
    if isinstance(exc, TransactionAborted):
        return exc.reason
    return None
