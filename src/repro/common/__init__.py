"""Shared building blocks: identifiers, errors and configuration helpers.

The modules in this package are dependency-free (they import nothing
else from :mod:`repro`) so that every other subpackage can rely on them
without creating import cycles.
"""

from repro.common.errors import (
    CertificationRefused,
    ConfigError,
    DLUViolation,
    HistoryError,
    LockTimeout,
    RefusalReason,
    ReproError,
    SimulationError,
    TransactionAborted,
    reason_of,
)
from repro.common.ids import (
    DataItemId,
    SerialNumber,
    SubtxnId,
    TxnId,
    global_txn,
    local_txn,
    qualified_item,
)

__all__ = [
    "CertificationRefused",
    "ConfigError",
    "DLUViolation",
    "DataItemId",
    "HistoryError",
    "LockTimeout",
    "RefusalReason",
    "ReproError",
    "SerialNumber",
    "SimulationError",
    "SubtxnId",
    "TransactionAborted",
    "TxnId",
    "global_txn",
    "local_txn",
    "qualified_item",
    "reason_of",
]
