"""A failure storm: every method under randomized unilateral aborts.

Drives the same seeded workload (30 global transactions over three
sites, plus local transactions) through each transaction-management
method while a failure injector unilaterally aborts prepared
subtransactions, then prints the comparative scoreboard: commits,
aborts by cause, resubmissions — and whether the recorded history
survived the full correctness audit.

The punchline matches the paper: the naive baseline "wins" on commits
and loses the only thing that matters.

Run:  python examples/failure_storm.py
"""

from repro import (
    MultidatabaseSystem,
    RandomFailureInjector,
    SystemConfig,
    WorkloadConfig,
    WorkloadGenerator,
    audit,
    collect_metrics,
    run_schedule,
)
from repro.sim.experiments import guarantee_holds
from repro.sim.report import render_table

METHODS = ("2cm", "2cm-nocommitcert", "naive", "ticket", "cgm")


def run_method(method: str, seed: int):
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("a", "b", "c"),
            n_coordinators=2,
            method=method,
            seed=seed,
        )
    )
    injector = RandomFailureInjector(system, probability=0.45, seed=seed)
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=("a", "b", "c"),
            n_global=30,
            n_local=6,
            n_tables=4,
            keys_per_site=20,
            update_fraction=0.7,
            sites_max=2,
            seed=seed,
        )
    ).generate()
    result = run_schedule(system, schedule)
    metrics = collect_metrics(system, latencies=result.commit_latencies)
    report = audit(system)
    return injector, metrics, report


SEEDS = (1, 2, 3, 4, 5, 6)


def main() -> None:
    rows = []
    for method in METHODS:
        injected = committed = aborted = resubmissions = 0
        latencies = []
        corrupted_runs = 0
        for seed in SEEDS:
            injector, metrics, report = run_method(method, seed)
            injected += injector.injected
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            resubmissions += metrics.resubmissions
            latencies.extend(metrics.latencies)
            if not guarantee_holds(report):
                corrupted_runs += 1
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
        rows.append(
            [
                method,
                injected,
                committed,
                aborted,
                resubmissions,
                f"{mean_latency:.0f}",
                corrupted_runs,
            ]
        )
    print(
        render_table(
            f"Failure storm: {len(SEEDS)} runs x 30 global txns, "
            "p(unilateral abort) = 0.45",
            [
                "method",
                "injected",
                "committed",
                "aborted",
                "resubmissions",
                "latency",
                "corrupted-runs",
            ],
            rows,
        )
    )
    print()
    print("Note how 'naive' commits the most transactions — by sometimes")
    print("producing a history no serial execution could explain, while")
    print("2cm pays for every failure with certification aborts instead.")


if __name__ == "__main__":
    main()
