"""Quickstart: a two-site multidatabase running the 2CM method.

Builds the system of the paper's Fig. 1 (coordinators, 2PC agents,
certifiers, rigorous LTMs), runs one cross-site funds transfer through
the full 2PC + certification pipeline, and audits the recorded history
against the paper's correctness criterion.

Run:  python examples/quickstart.py
"""

from repro import (
    AddValue,
    GlobalTransactionSpec,
    MultidatabaseSystem,
    ReadItem,
    SystemConfig,
    UpdateItem,
    audit,
    global_txn,
)


def main() -> None:
    # One LDBS per bank; each keeps full design and execution autonomy.
    system = MultidatabaseSystem(
        SystemConfig(sites=("bank_north", "bank_south"), method="2cm")
    )
    system.load("bank_north", "accounts", {"alice": 900})
    system.load("bank_south", "accounts", {"bob": 100})

    transfer = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("bank_north", ReadItem("accounts", "alice")),
            ("bank_north", UpdateItem("accounts", "alice", AddValue(-250))),
            ("bank_south", UpdateItem("accounts", "bob", AddValue(250))),
        ),
    )

    done = system.submit(transfer)
    system.run()

    outcome = done.value
    print(f"T1 committed: {outcome.committed}")
    print(f"serial number: {outcome.sn}")
    print(f"end-to-end latency: {outcome.latency:.1f} time units")
    print()
    print("history (paper notation):")
    print(" ", system.history.render())
    print()

    north = {k.key: v for k, v in system.ltm("bank_north").store.snapshot().items()}
    south = {k.key: v for k, v in system.ltm("bank_south").store.snapshot().items()}
    print(f"bank_north: {north}")
    print(f"bank_south: {south}")
    assert north["alice"] + south["bob"] == 1000, "money must be conserved"

    report = audit(system)
    print()
    print("correctness audit:")
    for line in report.summary().splitlines():
        print(" ", line)
    assert report.ok


if __name__ == "__main__":
    main()
