"""Travel booking across autonomous databases, with a failure mid-2PC.

The early-90s motivating scenario for heterogeneous multidatabases: an
airline and a hotel chain each run their own DBMS (different vendors,
no shared prepared state), and a travel agency books a trip as one
global transaction.  After both participants voted READY and the
coordinator durably decided COMMIT, the airline's DBMS unilaterally
rolls the subtransaction back (the paper's log-buffer-overflow class of
failure).  The 2PC Agent's resubmission machinery replays the booking
from the Agent log, so the global commit still lands atomically — and
the certifier guarantees nobody observed an inconsistent state.

Run:  python examples/travel_booking.py
"""

from repro import (
    AddValue,
    GlobalTransactionSpec,
    InsertItem,
    LatencyModel,
    MultidatabaseSystem,
    OpKind,
    ReadItem,
    SystemConfig,
    UpdateItem,
    audit,
    global_txn,
)
from repro.core.agent import AgentConfig
from repro.sim.failures import inject_abort_after_global_commit


def main() -> None:
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("airline", "hotel"),
            method="2cm",
            # The COMMIT to the airline crawls: plenty of time for the
            # failure (and its repair) to happen inside the window.
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:airline"): 70.0}
            ),
            agent=AgentConfig(alive_check_interval=20.0),
        )
    )
    system.load("airline", "flights", {"VY1234": 2})   # seats left
    system.load("hotel", "rooms", {"sea_view": 1})     # rooms left

    booking = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("airline", ReadItem("flights", "VY1234")),
            ("airline", UpdateItem("flights", "VY1234", AddValue(-1))),
            ("airline", InsertItem("flights", ("booking", "smith"), "VY1234")),
            ("hotel", UpdateItem("rooms", "sea_view", AddValue(-1))),
            ("hotel", InsertItem("rooms", ("booking", "smith"), "sea_view")),
        ),
    )

    done = system.submit(booking)
    # The airline DBMS throws the prepared subtransaction away just
    # after the coordinator's durable commit decision.
    inject_abort_after_global_commit(system, global_txn(1), "airline", delay=1.0)
    system.run()

    outcome = done.value
    print(f"booking committed: {outcome.committed}")
    print(f"resubmissions at the airline: "
          f"{system.agent('airline').resubmissions}")
    print()

    print("what happened at the airline, step by step:")
    for op in system.history.ops:
        if op.site == "airline" or op.kind in (
            OpKind.GLOBAL_COMMIT,
            OpKind.GLOBAL_ABORT,
        ):
            marker = ""
            if op.kind is OpKind.LOCAL_ABORT and op.unilateral:
                marker = "   <-- unilateral abort (airline DBMS failure)"
            if op.subtxn is not None and op.subtxn.incarnation == 1:
                marker = "   <-- resubmission from the Agent log"
            print(f"  t={op.time:7.2f}  {op.label}{marker}")
    print()

    flights = {k.key: v for k, v in system.ltm("airline").store.snapshot().items()}
    rooms = {k.key: v for k, v in system.ltm("hotel").store.snapshot().items()}
    print(f"airline state: {flights}")
    print(f"hotel state:   {rooms}")
    assert flights["VY1234"] == 1, "exactly one seat sold, once"
    assert rooms["sea_view"] == 0

    report = audit(system)
    assert report.ok
    print()
    print("audit: view serializable =",
          report.view_serializability.serializable)


if __name__ == "__main__":
    main()
