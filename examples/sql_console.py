"""A batch SQL console over the multidatabase.

Statements are routed by a ``site:`` prefix (the multidatabase query
language of the era routed by database name); a bare ``COMMIT`` ends
the global transaction and runs 2PC + certification.  The demo script
below moves funds, runs a local report in parallel and prints the
timeline — change the script, the routing or the method freely.

Run:  python examples/sql_console.py
"""

from repro import (
    GlobalTransactionSpec,
    MultidatabaseSystem,
    SystemConfig,
    audit,
    global_txn,
    parse_sql,
)
from repro.sim.timeline import render_timeline

SCRIPT = """
hq:      SELECT * FROM accounts WHERE KEY = 'operating'
hq:      UPDATE accounts SET VALUE = VALUE - 1200 WHERE KEY = 'operating'
plant:   UPDATE accounts SET VALUE = VALUE + 1200 WHERE KEY = 'payroll'
plant:   INSERT INTO journal VALUES ('2026-07-06', 1200)
COMMIT
hq:      SELECT * FROM accounts
COMMIT
"""


def parse_console_script(text):
    """Split a console script into global transactions.

    Each transaction is a list of ``(site, command)`` steps terminated
    by a ``COMMIT`` line.
    """
    transactions = []
    steps = []
    for raw in text.strip().splitlines():
        line = raw.strip()
        if not line or line.startswith("--"):
            continue
        if line.upper() == "COMMIT":
            if steps:
                transactions.append(tuple(steps))
                steps = []
            continue
        site, _, statement = line.partition(":")
        if not statement:
            raise SystemExit(f"missing 'site:' prefix in {line!r}")
        steps.append((site.strip(), parse_sql(statement)))
    if steps:
        transactions.append(tuple(steps))
    return transactions


def main() -> None:
    system = MultidatabaseSystem(SystemConfig(sites=("hq", "plant")))
    system.load("hq", "accounts", {"operating": 10_000})
    system.load("plant", "accounts", {"payroll": 500})
    system.load("plant", "journal", {})

    for number, steps in enumerate(parse_console_script(SCRIPT), start=1):
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(number), steps=steps)
        )
        system.run()
        outcome = done.value
        print(f"T{number}: {'COMMIT' if outcome.committed else 'ABORT'}  "
              f"(sn={outcome.sn}, latency={outcome.latency:.0f})")
        for step, result in zip(steps, outcome.results):
            site, command = step
            rows = getattr(result, "rows", ())
            if rows:
                print(f"    {site}: {list(rows)}")
    print()
    print("timeline:")
    print(render_timeline(system.history, coalesce=2.0))
    print()
    report = audit(system)
    print(f"audit ok: {report.ok}")
    assert report.ok


if __name__ == "__main__":
    main()
