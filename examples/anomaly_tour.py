"""A guided tour of the paper's anomaly histories.

Runs each worked history (H1, H2, H3, Hx) twice — once under the method
that exposes the anomaly, once under the full 2CM method — and prints
the evidence: the distortion witnesses, the commit-order-graph cycles
and the view-serializability verdicts.

Run:  python examples/anomaly_tour.py
"""

from repro import run_h1, run_h2, run_h3, run_hx

TOUR = [
    (
        "H1 — global view distortion (Sec. 3)",
        run_h1,
        "naive",
        "T1 is prepared everywhere, globally committed, then its site-a\n"
        "subtransaction is unilaterally aborted.  T2 deletes Y and\n"
        "updates X before T1's COMMIT arrives; the resubmitted T1 reads\n"
        "a different world than the original did.",
    ),
    (
        "H2 — local view distortion, direct conflict (Sec. 5.1)",
        run_h2,
        "naive",
        "T1 and T3 commit in opposite orders at the two sites; the local\n"
        "transaction L4 reads Q from T3 but Y from the initial state —\n"
        "a view no serial history can produce (cycle T1 -> T3 -> L4 -> T1).",
    ),
    (
        "H3 — local view distortion, indirect conflicts (Sec. 5.1)",
        run_h3,
        "2cm-prepare-order",
        "T5 and T6 never touch the same data.  Their PREPAREs arrive in\n"
        "opposite orders at the two sites, so committing in prepared\n"
        "order (the alternative the paper rejects) reverses the commit\n"
        "orders; locals L7 and L8 witness the contradiction.",
    ),
    (
        "Hx — COMMIT overtakes PREPARE (Sec. 5.3)",
        run_hx,
        "2cm-noext",
        "T8's COMMIT reaches site s before T7's PREPARE does, although\n"
        "SN(7) < SN(8).  Without the prepare-certification extension the\n"
        "commit orders reverse across sites (cyclic CG).",
    ),
]


def describe(result) -> None:
    report = result.audit
    verdict = report.view_serializability.serializable
    print(f"    view serializable: {verdict}")
    if report.distortions.view_splits:
        for split in report.distortions.view_splits:
            print(f"    view split: {split}")
    if report.distortions.decomposition_changes:
        for change in report.distortions.decomposition_changes:
            print(f"    decomposition change: {change}")
    cycle = report.distortions.commit_graph_cycle
    if cycle is not None:
        print("    CG cycle:", " -> ".join(t.label for t in cycle))
    outcomes = ", ".join(
        f"{txn.label}:{'commit' if out.committed else f'abort({out.reason})'}"
        for txn, out in sorted(result.global_outcomes.items())
    )
    print(f"    outcomes: {outcomes}")


def main() -> None:
    for title, runner, weak_method, story in TOUR:
        print("=" * 72)
        print(title)
        print("-" * 72)
        for line in story.splitlines():
            print(f"  {line}")
        print()
        print(f"  under {weak_method!r} (anomaly expected):")
        describe(runner(weak_method))
        print()
        print("  under '2cm' (the paper's full method):")
        describe(runner("2cm"))
        print()


if __name__ == "__main__":
    main()
