"""A partition storm: 2PC through a hostile network, invariants intact.

The paper assumes the Network never loses, duplicates or reorders a
message (Sec. 2).  This example drops that assumption on purpose:
seeded partitions repeatedly cut sites off, the wire loses and
duplicates traffic, delay spikes reorder it, and agents crash and
recover mid-protocol — while the session layer re-derives the paper's
lossless-FIFO contract underneath the unchanged 2PC and the heartbeat
failure detector quarantines unreachable sites so the coordinator
degrades gracefully instead of piling up doomed transactions.

After the storm heals, the full invariant battery is re-checked: no
transaction committed at one site and rolled back at another, no
prepared subtransaction left orphaned, `C(H)` still view serializable.

Run:  python examples/partition_storm.py [seed]
"""

import sys

from repro.sim.failures import ChaosConfig, build_fault_plan, run_chaos


def storm(seed: int) -> "ChaosResult":
    config = ChaosConfig(
        seed=seed,
        duration=3000,
        n_partitions=3,
        partition_min=200,
        partition_max=500,
        loss=0.03,
        duplication=0.05,
        crash_probability=0.04,
    )
    plan = build_fault_plan(config)
    print("Nemesis schedule:")
    print(plan.describe())
    print()
    return run_chaos(config)


def main(seed: int = 0) -> int:
    result = storm(seed)
    print(result.summary())
    print()
    counters = result.counters
    print(
        f"The wire dropped {counters['messages_lost']} messages "
        f"(+{counters['partition_drops']} severed by partitions), "
        f"duplicated {counters['messages_duplicated']}, and the session "
        f"layer retransmitted {counters['retransmits']} times to repair it."
    )
    print(
        f"Agents crashed {counters['agent_crashes']} times; the failure "
        f"detector quarantined sites for "
        f"{counters['quarantine_refusals']} refused submissions."
    )
    print()
    if result.ok:
        print(
            "Every invariant held: atomic commitment, no orphaned "
            "prepared subtransactions, C(H) view serializable."
        )
        return 0
    print("INVARIANT VIOLATIONS:")
    for violation in result.violations:
        print(f"  - {violation}")
    return 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 0))
