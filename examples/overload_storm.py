"""An overload storm: offered load far above capacity, shed cleanly.

The paper assumes arrival rates the certifiers can absorb.  This
example pushes 16x the comfortable load through the system twice —
once unprotected, once with the overload layer on — and shows what
protection buys.  Unprotected, every arrival is accepted: prepared
entries pile up behind head-of-line commit certifications (commit
certification answers in SN order), basic prepare certification starts
refusing candidates against the stale entries, and resubmissions of
the refused work feed the backlog that caused them.  Protected,
admission control refuses the excess at BEGIN (``OVERLOADED``),
deadlines cut off work that can no longer finish in time, exponential
backoff with seeded jitter decorrelates the retriers, and per-site
circuit breakers stop routing work to sites that cannot finish any.

Either way the run must *shed cleanly*: every admitted global reaches
a terminal state, no prepared subtransaction is left orphaned, atomic
commitment and view serializability hold, and the certifier tables
drain to empty.  Overload protection is a liveness optimisation,
never a correctness crutch.

Run:  python examples/overload_storm.py [seed]
"""

import sys

from repro.sim.overload import OverloadDrillConfig, run_overload

LOAD = 16.0


def main(seed: int = 0) -> int:
    results = {}
    for shed in (False, True):
        label = "protected" if shed else "unprotected"
        print(f"=== 16x storm, {label} ===")
        result = run_overload(
            OverloadDrillConfig(seed=seed, load=LOAD, shed=shed)
        )
        print(result.summary())
        print()
        results[shed] = result

    off, on = results[False], results[True]
    print(
        f"Unprotected: {off.committed}/{off.submitted} committed, "
        f"goodput {off.goodput:.5f} committed/time-unit."
    )
    print(
        f"Protected:   {on.committed}/{on.submitted} committed "
        f"({on.counters['shed']} shed at BEGIN, "
        f"{on.counters['deadline_aborts'] + on.counters['deadline_refusals']}"
        f" deadline-expired), goodput {on.goodput:.5f}."
    )
    print()
    if off.ok and on.ok:
        print(
            "Both runs shed cleanly: atomic commitment, no orphaned "
            "prepared subtransactions, C(H) view serializable, "
            "certifier tables empty."
        )
        return 0
    print("INVARIANT VIOLATIONS:")
    for result in (off, on):
        for violation in result.violations:
            print(f"  - {violation}")
    return 1


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 0))
