"""Interactive application programs: overdraft-guarded transfers.

The paper's Coordinator "returns the results to the application which
performs the necessary computation" before the global Commit.  This
example uses that interface directly: each transfer program *reads* the
source balance, decides how much it may move (or aborts), and only then
issues the updates — all inside one global transaction, with the
decision logic running exactly once even when failures force the agents
to resubmit.

Run:  python examples/overdraft_guard.py
"""

import random

from repro import (
    AbortRequested,
    AddValue,
    MultidatabaseSystem,
    ReadItem,
    SystemConfig,
    UpdateItem,
    audit,
    global_txn,
)
from repro.sim.failures import RandomFailureInjector

BANKS = ("north", "south")
FLOOR = 100  # never leave an account below this


def guarded_transfer(src, dst, account, amount):
    """One overdraft-guarded transfer as an application program."""

    def program():
        result = yield (src, ReadItem("accounts", account))
        if not result.rows:
            raise AbortRequested(f"no account {account!r} at {src}")
        balance = result.rows[0][1]
        movable = min(amount, balance - FLOOR)
        if movable <= 0:
            raise AbortRequested(
                f"{account}@{src} at {balance}: below the floor"
            )
        yield (src, UpdateItem("accounts", account, AddValue(-movable)))
        yield (dst, UpdateItem("accounts", account, AddValue(movable)))

    return program()


def main() -> None:
    rng = random.Random(42)
    system = MultidatabaseSystem(
        SystemConfig(sites=BANKS, n_coordinators=2, method="2cm")
    )
    for bank in BANKS:
        system.load(
            "%s" % bank, "accounts", {f"acct{i}": 150 for i in range(4)}
        )
    RandomFailureInjector(system, probability=0.4, seed=42)

    outcomes = []
    for number in range(1, 13):
        src, dst = rng.sample(BANKS, 2)
        account = f"acct{rng.randrange(4)}"
        amount = rng.choice((30, 80, 200))
        done = system.submit_program(
            global_txn(number), guarded_transfer(src, dst, account, amount)
        )
        outcomes.append((number, src, dst, account, amount, done))
        system.run()  # sequential for a readable ledger

    committed = aborted = 0
    for number, src, dst, account, amount, done in outcomes:
        outcome = done.value
        if outcome.committed:
            committed += 1
            print(f"T{number:<2} {src}->{dst} {account}: asked {amount:>3}, "
                  f"committed")
        else:
            aborted += 1
            print(f"T{number:<2} {src}->{dst} {account}: asked {amount:>3}, "
                  f"aborted ({outcome.reason})")

    print()
    print(f"{committed} committed, {aborted} guarded/aborted")
    # The floor held everywhere despite failures and resubmissions.
    for bank in BANKS:
        for item, value in system.ltm(bank).store.snapshot().items():
            assert value >= FLOOR, (bank, item, value)
    total = sum(
        sum(system.ltm(bank).store.snapshot().values()) for bank in BANKS
    )
    print(f"money conserved: {total} == {2 * 4 * 150}")
    assert total == 2 * 4 * 150
    report = audit(system)
    print(f"audit ok: {report.ok}")
    assert report.ok


if __name__ == "__main__":
    main()
