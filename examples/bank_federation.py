"""A bank federation: global transfers, local work, DLU in action.

Three banks federate their pre-existing databases.  Global transactions
move money between banks (through the coordinators, 2PC + certifier);
each bank also runs *local* transactions the DTM never sees — tellers
posting fees directly against their own branch.  A failure injector
keeps unilaterally aborting prepared subtransactions.

Two things are verified at the end:

* **conservation** — the total money across the federation changed by
  exactly the net amount of the committed fee postings (every transfer
  is balanced, and resubmission must not double-apply anything);
* **serializability** — the full audit over the recorded history.

The Denied-Local-Updates guard is visible too: a teller touching an
account that is currently *bound data* of a prepared global transfer is
turned away (counted below).

Run:  python examples/bank_federation.py
"""

import random

from repro import (
    AddValue,
    DLUPolicy,
    GlobalTransactionSpec,
    MultidatabaseSystem,
    SystemConfig,
    UpdateItem,
    audit,
    global_txn,
)
from repro.sim.failures import RandomFailureInjector

BANKS = ("alpha", "beta", "gamma")
ACCOUNTS_PER_BANK = 8
OPENING_BALANCE = 1_000


def total_money(system) -> int:
    return sum(
        value
        for bank in BANKS
        for value in system.ltm(bank).store.snapshot("accounts").values()
    )


def main() -> None:
    rng = random.Random(7)
    system = MultidatabaseSystem(
        SystemConfig(
            sites=BANKS,
            n_coordinators=2,
            method="2cm",
            dlu_policy=DLUPolicy.ABORT,
        )
    )
    for bank in BANKS:
        system.load(
            "%s" % bank,
            "accounts",
            {f"acct{i}": OPENING_BALANCE for i in range(ACCOUNTS_PER_BANK)},
        )
    RandomFailureInjector(system, probability=0.4, seed=7)

    opening_total = total_money(system)

    # -- global transfers ------------------------------------------------
    transfers = []
    for number in range(1, 21):
        src, dst = rng.sample(BANKS, 2)
        amount = rng.choice((10, 25, 50))
        spec = GlobalTransactionSpec(
            txn=global_txn(number),
            steps=(
                (src, UpdateItem("accounts", f"acct{rng.randrange(8)}",
                                 AddValue(-amount))),
                (dst, UpdateItem("accounts", f"acct{rng.randrange(8)}",
                                 AddValue(amount))),
            ),
        )
        at = rng.uniform(0, 400)
        system.kernel.schedule(at, lambda s=spec: transfers.append(system.submit(s)))

    # -- local teller work ------------------------------------------------
    fees = []
    for _ in range(15):
        bank = rng.choice(BANKS)
        account = f"acct{rng.randrange(8)}"
        at = rng.uniform(0, 400)
        system.kernel.schedule(
            at,
            lambda b=bank, a=account: fees.append(
                (system.submit_local(b, [UpdateItem("accounts", a, AddValue(-1))]))
            ),
        )

    system.run()

    committed_transfers = sum(1 for t in transfers if t.value.committed)
    committed_fees = sum(1 for f in fees if f.value.committed)
    dlu_denials = sum(guard.denials for guard in system.guards.values())
    resubmissions = sum(system.agent(b).resubmissions for b in BANKS)

    print(f"transfers committed : {committed_transfers}/20")
    print(f"fees committed      : {committed_fees}/15")
    print(f"DLU denials         : {dlu_denials}")
    print(f"resubmissions       : {resubmissions}")
    print(f"unilateral aborts   : "
          f"{sum(system.ltm(b).unilateral_aborts for b in BANKS)}")

    closing_total = total_money(system)
    expected = opening_total - committed_fees  # each fee burns exactly 1
    print(f"money: opening={opening_total} closing={closing_total} "
          f"expected={expected}")
    assert closing_total == expected, "conservation violated!"

    report = audit(system)
    print("audit ok:", report.ok or report.view_serializability.serializable)
    assert report.rigor_violations == 0
    assert not report.distortions.has_global_distortion
    assert report.distortions.commit_graph_cycle is None


if __name__ == "__main__":
    main()
