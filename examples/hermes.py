"""HERMES redux: a heterogeneous federation, like the paper's prototype.

The paper's Sec. 7: "The Certifier algorithms have been implemented in
the HERMES prototype system ... The system incorporates two commercial
database products: the SQL Server (Sybase Inc.) and INGRES".  The whole
point of the 2PC Agent method is that such systems need not change: the
agents adapt to whatever the local interface does.

This example federates three deliberately *different* LDBSs:

* ``ingres``  — slow elementary operations, patient lock waits, active
  wait-for-graph deadlock detection, a nervous failure habit (the paper
  names INGRES's log-buffer overflow as a real unilateral-abort cause —
  we inject them against this site only);
* ``sybase``  — fast operations, short lock timeout, no detector;
* ``archive`` — a glacial batch-era system (very slow ops).

A mixed workload of cross-site transfers plus local work runs against
the federation; the audit at the end shows the certifier doesn't care
how differently the members behave.

Run:  python examples/hermes.py
"""

import random

from repro import (
    AddValue,
    GlobalTransactionSpec,
    LTMConfig,
    MultidatabaseSystem,
    ReadItem,
    SystemConfig,
    UpdateItem,
    audit,
    collect_metrics,
    global_txn,
)
from repro.core.agent import AgentConfig
from repro.history.model import OpKind
from repro.sim.failures import abort_current_incarnation

SITES = ("ingres", "sybase", "archive")

LTM_PROFILES = {
    "ingres": LTMConfig(
        op_duration=2.0,
        lock_timeout=400.0,
        deadlock_detection_period=25.0,
    ),
    "sybase": LTMConfig(op_duration=0.5, lock_timeout=80.0),
    "archive": LTMConfig(op_duration=6.0, lock_timeout=900.0),
}

AGENT_PROFILES = {
    # The nervous site gets watched closely.
    "ingres": AgentConfig(alive_check_interval=15.0),
    "sybase": AgentConfig(alive_check_interval=60.0),
    "archive": AgentConfig(alive_check_interval=120.0),
}


def main() -> None:
    rng = random.Random(1992)
    system = MultidatabaseSystem(
        SystemConfig(
            sites=SITES,
            n_coordinators=2,
            method="2cm",
            ltm_overrides=LTM_PROFILES,
            agent_overrides=AGENT_PROFILES,
        )
    )
    for site in SITES:
        system.load(site, "acct", {i: 500 for i in range(6)})

    # INGRES-style log-buffer overflows: every prepare at that site has
    # a coin-flip chance of a unilateral abort shortly after.
    def nervous_ingres(op):
        if op.kind is OpKind.PREPARE and op.site == "ingres":
            if rng.random() < 0.5:
                system.kernel.schedule(
                    rng.uniform(1.0, 10.0),
                    lambda t=op.txn: abort_current_incarnation(
                        system, t, "ingres"
                    ),
                )

    system.history.subscribe(nervous_ingres)

    transfers = []
    for number in range(1, 16):
        src, dst = rng.sample(SITES, 2)
        amount = rng.choice((5, 10, 25))
        spec = GlobalTransactionSpec(
            txn=global_txn(number),
            steps=(
                (src, UpdateItem("acct", rng.randrange(6), AddValue(-amount))),
                (dst, UpdateItem("acct", rng.randrange(6), AddValue(amount))),
            ),
        )
        system.kernel.schedule(
            rng.uniform(0, 300),
            lambda s=spec: transfers.append(system.submit(s)),
        )
    locals_ = []
    for _ in range(9):
        site = rng.choice(SITES)
        system.kernel.schedule(
            rng.uniform(0, 300),
            lambda s=site: locals_.append(
                system.submit_local(s, [ReadItem("acct", rng.randrange(6))])
            ),
        )
    system.run()

    metrics = collect_metrics(system)
    committed = sum(1 for t in transfers if t.value.committed)
    print(f"transfers committed : {committed}/15")
    print(f"local inquiries     : "
          f"{sum(1 for l in locals_ if l.value.committed)}/9")
    print(f"unilateral aborts   : {metrics.unilateral_aborts} "
          f"(all at the nervous INGRES)")
    print(f"resubmissions       : {metrics.resubmissions}")
    print()
    print("per-site flavour:")
    for site in SITES:
        ltm = system.ltm(site)
        print(
            f"  {site:8s} op={ltm.config.op_duration:>4} "
            f"lock_timeout={ltm.config.lock_timeout:>6} "
            f"deadlock_detector={'yes' if ltm.config.deadlock_detection_period else 'no':3s} "
            f"commits={ltm.commits:>3} uni-aborts={ltm.unilateral_aborts}"
        )
    total = sum(
        sum(system.ltm(site).store.snapshot("acct").values()) for site in SITES
    )
    print()
    print(f"money conserved: {total} == {3 * 6 * 500}")
    assert total == 3 * 6 * 500

    report = audit(system)
    print(f"audit ok: {report.ok}")
    assert report.rigor_violations == 0
    assert not report.distortions.has_global_distortion
    assert report.distortions.commit_graph_cycle is None


if __name__ == "__main__":
    main()
