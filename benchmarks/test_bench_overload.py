"""Overload benchmark: goodput with and without load shedding.

Runs the seeded overload drill (:mod:`repro.sim.overload`) at 1x, 4x
and 16x the comfortable offered load, once unprotected and once with
the overload layer on (admission control + deadlines + adaptive
backoff + breakers), and measures what protection buys: at light load
the layer is invisible; at 16x the unprotected system loses most of
its throughput to certification conflicts and head-of-line commit
delays, while the shedding system refuses the excess at BEGIN and
keeps committing.  Publishes the table like every other experiment and
writes the machine-readable ``BENCH_overload.json`` at the repo root
(same pattern as ``BENCH_kernel.json`` / ``BENCH_chaos.json``).
"""

import json
import os

from repro.sim.overload import OverloadDrillConfig, run_overload

from bench_utils import publish, run_experiment

HEADERS = [
    "load",
    "shed",
    "committed",
    "aborted",
    "shed-count",
    "goodput",
    "sim-time",
    "ok",
]

LOAD_LEVELS = (1.0, 4.0, 16.0)
SEED = 1
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_overload.json",
)


def _run_at(load: float, shed: bool):
    return run_overload(OverloadDrillConfig(seed=SEED, load=load, shed=shed))


def _sweep():
    rows = []
    records = []
    for load in LOAD_LEVELS:
        for shed in (False, True):
            r = _run_at(load, shed)
            rows.append(
                [
                    f"{load:g}x",
                    "on" if shed else "off",
                    r.committed,
                    r.aborted,
                    r.counters.get("shed", 0),
                    round(r.goodput, 5),
                    round(r.sim_time, 1),
                    r.ok,
                ]
            )
            records.append(
                {
                    "load": load,
                    "shed": shed,
                    "submitted": r.submitted,
                    "committed": r.committed,
                    "aborted": r.aborted,
                    "goodput": r.goodput,
                    "sim_time": r.sim_time,
                    "ok": r.ok,
                    "counters": r.counters,
                    "violations": [v.to_dict() for v in r.violations],
                }
            )
    with open(BENCH_PATH, "w") as handle:
        json.dump(
            {"experiment": "overload_shedding", "seed": SEED, "levels": records},
            handle,
            indent=2,
        )
    return rows, records


def test_bench_overload(benchmark):
    rows, records = run_experiment(benchmark, _sweep)
    publish(
        "E19_overload",
        "E19: goodput under overload, shedding off vs on",
        HEADERS,
        rows,
    )
    by_key = {(r["load"], r["shed"]): r for r in records}
    # Every run — protected or not — sheds *cleanly*: the invariant
    # battery (atomicity, view serializability, no orphaned PREPARED,
    # terminal outcomes, empty certifier tables) holds throughout.
    for record in records:
        assert record["ok"], (record["load"], record["shed"], record["violations"])
    # At light load the layer is invisible: nothing is shed and the
    # outcome is identical to the unprotected run.
    assert by_key[(1.0, True)]["counters"]["shed"] == 0
    assert by_key[(1.0, True)]["committed"] == by_key[(1.0, False)]["committed"]
    # At 16x the storm actually overwhelms the unprotected system...
    assert (
        by_key[(16.0, False)]["committed"]
        < by_key[(16.0, False)]["submitted"] * 0.5
    )
    # ...and shedding turns refused admissions into kept goodput.
    assert by_key[(16.0, True)]["counters"]["shed"] > 0
    assert by_key[(16.0, True)]["goodput"] >= by_key[(16.0, False)]["goodput"]
