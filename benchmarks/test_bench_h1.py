"""E2 — history H1: global view distortion (paper Sec. 3 / Sec. 4).

Paper: the resubmitted ``T^a_11`` reads X from T2 while ``T^a_10`` read
it from T0, and its decomposition changes because T2 deleted Y; no
serial history can give T1 two views.  The basic prepare certification
(alive-interval intersection) prevents this by refusing T2's PREPARE.
"""

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn
from repro.workload.scenarios import run_h1

from bench_utils import publish, run_experiment

HEADERS = [
    "method",
    "T1",
    "T2",
    "view-splits",
    "decomp-changes",
    "cg-cycle",
    "view-serializable",
    "refusal-reason",
]


def _rows():
    rows = []
    results = {}
    for method in ("naive", "2cm"):
        result = run_h1(method)
        results[method] = result
        report = result.audit
        t2 = result.outcome(2)
        rows.append(
            [
                method,
                "commit" if result.outcome(1).committed else "abort",
                "commit" if t2.committed else "abort",
                len(
                    [
                        s
                        for s in report.distortions.view_splits
                        if s.txn == global_txn(1)
                    ]
                ),
                len(report.distortions.decomposition_changes),
                report.distortions.commit_graph_cycle is not None,
                report.view_serializability.serializable,
                str(t2.reason) if t2.reason else "-",
            ]
        )
    return rows, results


def test_bench_h1(benchmark):
    rows, results = run_experiment(benchmark, _rows)
    publish("E2_h1", "E2: history H1 (global view distortion)", HEADERS, rows)

    naive, cm = rows
    # Naive: both commit; T1 split its view between T0 and T2; the
    # decomposition changed; C(H) not view serializable.
    assert naive[1] == naive[2] == "commit"
    assert naive[3] >= 1 and naive[4] >= 1
    assert naive[6] is False
    # 2CM: T2 refused through the alive-interval intersection; clean.
    assert cm[2] == "abort"
    assert cm[7] == str(RefusalReason.ALIVE_INTERSECTION)
    assert cm[6] is True

    # The paper's concrete reads-from split on X^a.
    split = [
        s
        for s in results["naive"].audit.distortions.view_splits
        if s.txn == global_txn(1) and s.item.key == "X"
    ][0]
    assert split.first_source is None            # T0
    assert split.second_source == global_txn(2)  # T2
