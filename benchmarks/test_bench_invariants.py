"""E6 — the Correctness Invariant and the Conflict Detection Basis
(paper Sec. 4.1) over randomized failing workloads.

CI: (1) no two conflicting subtransactions simultaneously prepared;
(2) no unilaterally-aborted subtransaction moved to prepared.  2CM
enforces it through the prepare certification; the naive baseline
violates it as soon as failures interleave badly.
"""

from repro.sim.experiments import exp_ci_invariant

from bench_utils import publish, rows_where, run_experiment

HEADERS = ["method", "runs", "ci-violations", "guarantee-failures"]


def test_bench_ci_invariant(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_ci_invariant(seeds=(1, 2, 3, 4, 5, 6, 7, 8)),
    )
    publish("E6_ci_invariant", "E6: Correctness Invariant", HEADERS, rows)

    cm = rows_where(rows, 0, "2cm")[0]
    naive = rows_where(rows, 0, "naive")[0]
    # 2CM never violates CI and never loses the guarantee.
    assert cm[2] == 0 and cm[3] == 0
    # The naive baseline does violate CI under the same workloads.
    assert naive[2] > 0
