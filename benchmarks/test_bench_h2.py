"""E3 — history H2: local view distortion via a direct conflict
(paper Sec. 5.1).

Paper: the cycle ``T1 → T3 → L4 → T1`` arises because the local commits
of T1 and T3 land in reversed orders at sites a and b, and the local
transaction L4 reads Q from T3 but Y from T0.  2CM prevents it.
"""

from repro.common.ids import global_txn, local_txn
from repro.history.model import OpKind
from repro.workload.scenarios import run_h2

from bench_utils import publish, run_experiment

HEADERS = [
    "method",
    "T1",
    "T3",
    "L4",
    "cg-cycle",
    "view-serializable",
]


def _rows():
    rows = []
    results = {}
    for method in ("naive", "2cm"):
        result = run_h2(method)
        results[method] = result
        report = result.audit
        l4 = result.local_outcomes.get(local_txn(4, "a"))
        rows.append(
            [
                method,
                "commit" if result.outcome(1).committed else "abort",
                "commit" if result.outcome(3).committed else "abort",
                "commit" if (l4 and l4.committed) else "abort",
                " -> ".join(t.label for t in report.distortions.commit_graph_cycle)
                if report.distortions.commit_graph_cycle
                else "-",
                report.view_serializability.serializable,
            ]
        )
    return rows, results


def test_bench_h2(benchmark):
    rows, results = run_experiment(benchmark, _rows)
    publish("E3_h2", "E3: history H2 (local view distortion, direct)", HEADERS, rows)

    naive, cm = rows
    # Naive: everything commits, and the paper's exact cycle appears.
    assert naive[1] == naive[2] == naive[3] == "commit"
    assert set(naive[4].split(" -> ")) == {"T1", "T3", "L4"}
    assert naive[5] is False
    # 2CM stays view serializable.
    assert cm[5] is True and cm[4] == "-"

    # The paper's witness: L4 reads Q from T3 but Y from T0 (not T1).
    naive_result = results["naive"]
    l4_reads = {
        op.item.key: (op.read_from.txn if op.read_from else None)
        for op in naive_result.system.history.ops
        if op.kind is OpKind.READ and op.txn == local_txn(4, "a")
    }
    assert l4_reads["Q"] == global_txn(3)
    assert l4_reads["Y"] is None
