"""E13 — throughput/latency scaling, 2CM vs CGM (the deferred study).

The paper's architectural pitch: 2CM is fully decentralized ("simple
algorithms that can be replicated onto as many sites as needed") while
CGM routes every command through a centralized scheduler holding
coarse-granularity global locks.  The sweep grows the federation and
compares commit throughput and mean global latency.
"""

from repro.sim.experiments import exp_scaling

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "sites",
    "method",
    "committed",
    "throughput",
    "mean-latency",
    "p95-latency",
    "delays",
]


def test_bench_scaling(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_scaling(site_counts=(2, 4, 6), seeds=(1, 2)),
    )
    publish("E13_scaling", "E13: scaling (2CM vs CGM)", HEADERS, rows)

    for n_sites in (2, 4, 6):
        cm = [r for r in rows if r[0] == n_sites and r[1] == "2cm"][0]
        cgm = [r for r in rows if r[0] == n_sites and r[1] == "cgm"][0]
        # 2CM sustains at least CGM's throughput at every size and is
        # never slower per transaction.
        assert cm[3] >= cgm[3]
        assert cm[4] <= cgm[4]
    # 2CM commits everything everywhere in this failure-free sweep.
    cm_commits = [r[2] for r in rows_where(rows, 1, "2cm")]
    assert min(cm_commits) >= 46  # 48 submitted per point; allow
    # a couple of deadlock-timeout victims.
