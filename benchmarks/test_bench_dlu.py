"""E11 — ablation of the DLU assumption (paper Sec. 2).

DLU: "If a data item belongs to bound data of a global transaction, no
local transaction may update it, albeit it may read it."  With the
guard enforcing (ABORT or BLOCK) the guarantee holds; with enforcement
off (VIOLATE) local writes land inside bound data of failed prepared
subtransactions, resubmissions read different views and the guarantee
falls — demonstrating the assumption is load-bearing, not decorative.
"""

from repro.sim.experiments import exp_dlu_ablation

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "dlu-policy",
    "denials",
    "violations-allowed",
    "distorted-runs",
    "guarantee-failures",
]


def test_bench_dlu(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_dlu_ablation(seeds=(1, 2, 3, 4, 5, 6, 7, 8)),
    )
    publish("E11_dlu", "E11: DLU enforcement ablation", HEADERS, rows)

    by_policy = {row[0]: row for row in rows}
    # Enforcing policies: the guarantee holds in every run.
    assert by_policy["abort"][4] == 0
    assert by_policy["block"][4] == 0
    # Enforcement off: violations get through and anomalies appear.
    assert by_policy["violate"][2] > 0
    assert by_policy["violate"][3] > 0
    assert by_policy["violate"][4] > 0
    # The enforcing policies actually had something to enforce.
    assert by_policy["abort"][1] > 0
