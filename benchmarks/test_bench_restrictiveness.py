"""E7 — failure-free restrictiveness (paper Sec. 6 comparison).

Paper: "If we assume that neither checking the order of the arriving
PREPARE messages, nor too long a time between alive time checks ever
cause aborts, 2CM is less restrictive than CGM: in a failure-free
situation it does not abort any transactions."  The ticket baseline
aborts transactions "in vain" whenever local serialization disagrees
with the predefined order.

Rows report certification-induced aborts separately from lock-wait
timeouts (deadlock resolution, common to all locking methods).
"""

from repro.sim.experiments import exp_restrictiveness

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "method",
    "committed",
    "cert-aborts",
    "lock-aborts",
    "delays",
    "mean-latency",
    "guarantee-ok",
]


def test_bench_restrictiveness(benchmark):
    rows = run_experiment(benchmark, exp_restrictiveness)
    publish(
        "E7_restrictiveness",
        "E7: failure-free restrictiveness (3 sites, 90 transactions)",
        HEADERS,
        rows,
    )

    by_method = {row[0]: row for row in rows}
    # The paper's headline: zero certification aborts for 2CM.
    assert by_method["2cm"][2] == 0
    # The ticket scheme aborts in vain.
    assert by_method["ticket"][2] > 0
    # CGM commits less and is slower (site/table-granularity blocking).
    assert by_method["cgm"][1] < by_method["2cm"][1]
    assert by_method["cgm"][5] > by_method["2cm"][5]
    # Correctness holds for every certifying method here (failure-free).
    for method in ("2cm", "cgm", "ticket"):
        assert by_method[method][6] is True
