"""Micro-benchmarks of the library's hot paths.

Unlike the experiment benches (one deterministic round each), these use
pytest-benchmark's statistics properly: each measures one substrate in
isolation so simulator regressions show up as timing changes rather
than as experiment-table drift.
"""

from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.committed import committed_projection
from repro.history.viewser import check_view_serializable
from repro.kernel import EventKernel
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.ldbs.locks import LockManager, LockMode
from repro.ldbs.sql import parse_sql

from tests.helpers import HistoryBuilder


def test_bench_kernel_event_throughput(benchmark):
    """Schedule + fire 10k kernel events."""

    def run():
        kernel = EventKernel()
        for i in range(10_000):
            kernel.schedule(float(i % 97), _noop)
        kernel.run()
        return kernel.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def _noop():
    return None


def test_bench_lock_acquire_release(benchmark):
    """1k acquire/release cycles over 8 rows, 4 owners."""
    rows = [("row", DataItemId("t", k)) for k in range(8)]
    owners = [SubtxnId(global_txn(n), "a", 0) for n in range(1, 5)]

    def run():
        kernel = EventKernel()
        lm = LockManager(kernel)
        for i in range(1_000):
            owner = owners[i % 4]
            lm.acquire(owner, rows[i % 8], LockMode.S)
            if i % 4 == 3:
                lm.release_all(owner)
        for owner in owners:
            lm.release_all(owner)
        kernel.run()
        return lm.grants

    grants = benchmark(run)
    assert grants >= 900


def test_bench_viewser_exact_search(benchmark):
    """Exact view-serializability over a 7-transaction cyclic-SG history."""
    h = HistoryBuilder()
    for n in range(1, 8):
        h.r(n, "a", "X").w(n, "a", chr(ord("A") + n))
        h.w(n, "a", "X")
        h.cl(n, "a").c(n)
    projection = committed_projection(h.history)

    result = benchmark(lambda: check_view_serializable(projection))
    assert result.serializable is not None


def test_bench_sql_parse(benchmark):
    statement = "UPDATE accounts SET VALUE = VALUE - 250 WHERE KEY = 'alice'"

    def run():
        return parse_sql(statement)

    command = benchmark(run)
    assert command.table == "accounts"


def test_bench_full_2pc_round_trip(benchmark):
    """One complete two-site global transaction, wall-clock."""

    def run():
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        system.load("a", "t", {"X": 100})
        system.load("b", "t", {"Z": 10})
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", UpdateItem("t", "X", AddValue(-1))),
                    ("b", UpdateItem("t", "Z", AddValue(1))),
                ),
            )
        )
        system.run()
        return done.value.committed

    assert benchmark(run) is True


def test_bench_simulated_throughput(benchmark):
    """Simulator speed: 30-transaction workload, events per second."""
    from repro.sim.driver import run_schedule
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    def run():
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2)
        )
        schedule = WorkloadGenerator(
            WorkloadConfig(sites=("a", "b"), n_global=30, seed=1)
        ).generate()
        result = run_schedule(system, schedule)
        return len(result.global_outcomes)

    assert benchmark(run) == 30


def test_bench_timer_restart_churn(benchmark):
    """Watchdog pattern: a timer restarted 2k times before firing once."""
    from repro.kernel import Timer

    def run():
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 10.0, lambda: fired.append(kernel.now))
        timer.start()
        for i in range(2_000):
            kernel.run(until=(i + 1) * 0.001)
            timer.restart()
        kernel.run()
        return len(fired), len(kernel._queue)

    fired, residue = benchmark(run)
    assert fired == 1
    assert residue <= 2  # carrier design: no tombstone pile-up


def test_bench_kernel_cancel_heavy(benchmark):
    """10k schedules with 80% cancelled — tombstone compaction path."""

    def run():
        kernel = EventKernel()
        handles = [
            kernel.schedule(float(i % 199) + 1.0, _noop) for i in range(10_000)
        ]
        for i, handle in enumerate(handles):
            if i % 5:
                handle.cancel()
        kernel.run()
        return kernel.events_fired

    assert benchmark(run) == 2_000


def test_bench_lock_release_all_wide(benchmark):
    """release_all over an owner holding 200 rows with queued rivals."""
    rows = [("row", DataItemId("t", k)) for k in range(200)]
    hoarder = SubtxnId(global_txn(1), "a", 0)
    rivals = [SubtxnId(global_txn(n), "a", 0) for n in range(2, 6)]

    def run():
        kernel = EventKernel()
        lm = LockManager(kernel)
        for _ in range(10):
            for row in rows:
                lm.acquire(hoarder, row, LockMode.X)
            for n, rival in enumerate(rivals):
                lm.acquire(rival, rows[n * 40], LockMode.S)
            kernel.run()
            lm.release_all(hoarder)
            kernel.run()
            for rival in rivals:
                lm.release_all(rival)
            kernel.run()
        return lm.grants

    assert benchmark(run) > 0


def test_bench_wait_for_graph_contended(benchmark):
    """Deadlock-detector input on a manager with many idle resources."""
    rows = [("row", DataItemId("t", k)) for k in range(500)]
    owners = [SubtxnId(global_txn(n), "a", 0) for n in range(1, 11)]

    def run():
        kernel = EventKernel()
        lm = LockManager(kernel)
        for i, row in enumerate(rows):
            lm.acquire(owners[i % 10], row, LockMode.S)
        # One contended row out of 500: the graph scan must not pay
        # for the 499 quiet ones.
        lm.acquire(owners[0], rows[0], LockMode.X)
        kernel.run()
        total = 0
        for _ in range(200):
            total += len(lm.wait_for_graph())
        return total

    assert benchmark(run) >= 0


def test_bench_serialization_graph(benchmark):
    """SG over a 60-txn, 2.4k-op committed projection (read-heavy)."""
    from repro.history.graphs import serialization_graph
    from repro.history.model import History

    h = History()
    items = [DataItemId("t", f"k{i}") for i in range(25)]
    t = 0.0
    for n in range(1, 61):
        st = SubtxnId(global_txn(n), "a", 0)
        for j in range(40):
            t += 1.0
            item = items[(n * 7 + j * 3) % 25]
            if (n + j) % 3 == 0:
                h.record_write(t, st, "a", item)
            else:
                h.record_read(t, st, "a", item, read_from=None)
        t += 1.0
        h.record_local_commit(t, st, "a")
        h.record_global_commit(t, st.txn)
    ops = h.ops

    graph = benchmark(lambda: serialization_graph(ops))
    assert graph.number_of_nodes() == 60
