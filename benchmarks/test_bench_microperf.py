"""Micro-benchmarks of the library's hot paths.

Unlike the experiment benches (one deterministic round each), these use
pytest-benchmark's statistics properly: each measures one substrate in
isolation so simulator regressions show up as timing changes rather
than as experiment-table drift.
"""

from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.committed import committed_projection
from repro.history.viewser import check_view_serializable
from repro.kernel import EventKernel
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.ldbs.locks import LockManager, LockMode
from repro.ldbs.sql import parse_sql

from tests.helpers import HistoryBuilder


def test_bench_kernel_event_throughput(benchmark):
    """Schedule + fire 10k kernel events."""

    def run():
        kernel = EventKernel()
        for i in range(10_000):
            kernel.schedule(float(i % 97), _noop)
        kernel.run()
        return kernel.events_fired

    fired = benchmark(run)
    assert fired == 10_000


def _noop():
    return None


def test_bench_lock_acquire_release(benchmark):
    """1k acquire/release cycles over 8 rows, 4 owners."""
    rows = [("row", DataItemId("t", k)) for k in range(8)]
    owners = [SubtxnId(global_txn(n), "a", 0) for n in range(1, 5)]

    def run():
        kernel = EventKernel()
        lm = LockManager(kernel)
        for i in range(1_000):
            owner = owners[i % 4]
            lm.acquire(owner, rows[i % 8], LockMode.S)
            if i % 4 == 3:
                lm.release_all(owner)
        for owner in owners:
            lm.release_all(owner)
        kernel.run()
        return lm.grants

    grants = benchmark(run)
    assert grants >= 900


def test_bench_viewser_exact_search(benchmark):
    """Exact view-serializability over a 7-transaction cyclic-SG history."""
    h = HistoryBuilder()
    for n in range(1, 8):
        h.r(n, "a", "X").w(n, "a", chr(ord("A") + n))
        h.w(n, "a", "X")
        h.cl(n, "a").c(n)
    projection = committed_projection(h.history)

    result = benchmark(lambda: check_view_serializable(projection))
    assert result.serializable is not None


def test_bench_sql_parse(benchmark):
    statement = "UPDATE accounts SET VALUE = VALUE - 250 WHERE KEY = 'alice'"

    def run():
        return parse_sql(statement)

    command = benchmark(run)
    assert command.table == "accounts"


def test_bench_full_2pc_round_trip(benchmark):
    """One complete two-site global transaction, wall-clock."""

    def run():
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        system.load("a", "t", {"X": 100})
        system.load("b", "t", {"Z": 10})
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", UpdateItem("t", "X", AddValue(-1))),
                    ("b", UpdateItem("t", "Z", AddValue(1))),
                ),
            )
        )
        system.run()
        return done.value.committed

    assert benchmark(run) is True


def test_bench_simulated_throughput(benchmark):
    """Simulator speed: 30-transaction workload, events per second."""
    from repro.sim.driver import run_schedule
    from repro.workload.generator import WorkloadConfig, WorkloadGenerator

    def run():
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2)
        )
        schedule = WorkloadGenerator(
            WorkloadConfig(sites=("a", "b"), n_global=30, seed=1)
        ).generate()
        result = run_schedule(system, schedule)
        return len(result.global_outcomes)

    assert benchmark(run) == 30
