"""E1 — Fig. 2 / the full scenario matrix.

Regenerates the paper's worked transactions (Fig. 2) by running every
scenario history under every relevant method and tabulating whether the
anomaly materialized.  This is the one-table summary of E2–E5; the
per-history benches assert the fine structure.  The execution trees of
Fig. 2 themselves are re-rendered into ``results/E1_fig2.txt``.
"""

import os

from repro.common.ids import global_txn, local_txn
from repro.history.trees import render_figure
from repro.sim.experiments import exp_scenario_matrix
from repro.workload.scenarios import run_h1, run_h2, run_h3

from bench_utils import RESULTS_DIR, publish, rows_where, run_experiment

HEADERS = [
    "history",
    "method",
    "committed",
    "aborted",
    "global-distortion",
    "cg-cycle",
    "view-serializable",
]


def test_bench_scenario_matrix(benchmark):
    rows = run_experiment(benchmark, exp_scenario_matrix)
    publish("E1_scenario_matrix", "E1: scenario x method matrix", HEADERS, rows)

    # Under full 2CM every scenario row is anomaly-free.
    for row in rows_where(rows, 1, "2cm"):
        assert row[4] is False  # no global view distortion
        assert row[5] is False  # no CG cycle
        assert row[6] is True   # view serializable

    # Every weak-method row shows its designated anomaly.
    weak = [row for row in rows if row[1] != "2cm"]
    assert all(row[4] or row[5] for row in weak)


def test_bench_fig2_trees(benchmark):
    """Regenerate the execution trees of the paper's Fig. 2."""

    def render():
        blocks = []
        h1 = run_h1("naive")
        blocks.append(
            render_figure(h1.system.history, [global_txn(1), global_txn(2)])
        )
        h2 = run_h2("naive")
        blocks.append(
            render_figure(h2.system.history, [global_txn(3), local_txn(4, "a")])
        )
        h3 = run_h3("naive")
        blocks.append(
            render_figure(
                h3.system.history,
                [
                    global_txn(5),
                    global_txn(6),
                    local_txn(7, "a"),
                    local_txn(8, "b"),
                ],
            )
        )
        return "\n\n".join(blocks)

    figure = benchmark.pedantic(render, rounds=1, iterations=1)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "E1_fig2.txt"), "w") as handle:
        handle.write("Fig. 2 (regenerated): examples of transactions\n\n")
        handle.write(figure + "\n")
    print("\n" + figure)

    # T1's tree shows the paper's signature: aborted incarnation 0 at
    # site a, resubmitted incarnation 1, both under one 2PCA node.
    assert "A^a_10" in figure and "C^a_11" in figure
    # Local transactions render as flat trees.
    assert "L4" in figure and "L7" in figure and "L8" in figure
