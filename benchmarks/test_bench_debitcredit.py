"""E15 — DebitCredit/TPC-A on the multidatabase (extension experiment).

The canonical OLTP workload of the paper's era, with TPC-A's 15%
remote-account transactions turning into two-site global transactions.
Every method is run under a moderate unilateral-abort storm; the bank's
books must balance for exactly the set of committed transactions —
the end-to-end exactly-once test of the resubmission machinery — and
the throughput comparison mirrors E7's restrictiveness story on a
realistic workload.
"""

from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import collect_metrics
from repro.workload.debitcredit import (
    DebitCreditConfig,
    DebitCreditGenerator,
    verify_invariants,
)

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "method",
    "committed",
    "aborted",
    "resubmissions",
    "throughput",
    "books-balance",
]

METHODS = ("2cm", "ticket", "cgm", "naive")
SEEDS = (1, 2)


def _rows():
    rows = []
    for method in METHODS:
        committed = aborted = resubmissions = 0
        sim_time = 0.0
        books_ok = True
        for seed in SEEDS:
            config = DebitCreditConfig(
                sites=("branch1", "branch2", "branch3"),
                n_transactions=30,
                remote_fraction=0.15,
                n_inquiries=6,
                seed=seed,
            )
            generated = DebitCreditGenerator(config).generate()
            system = MultidatabaseSystem(
                SystemConfig(
                    sites=config.sites,
                    n_coordinators=2,
                    method=method,
                    seed=seed,
                )
            )
            RandomFailureInjector(system, probability=0.3, seed=seed)
            result = run_schedule(system, generated.schedule)
            metrics = collect_metrics(system)
            committed += metrics.global_committed
            aborted += metrics.global_aborted
            resubmissions += metrics.resubmissions
            sim_time += metrics.sim_time
            report = verify_invariants(
                system, generated, result.committed_globals
            )
            books_ok = books_ok and report.ok
        rows.append(
            [
                method,
                committed,
                aborted,
                resubmissions,
                committed / sim_time if sim_time else 0.0,
                books_ok,
            ]
        )
    return rows


def test_bench_debitcredit(benchmark):
    rows = run_experiment(benchmark, _rows)
    publish(
        "E15_debitcredit",
        "E15: DebitCredit (TPC-A style), 60 txns/method, p(abort)=0.3",
        HEADERS,
        rows,
    )

    by_method = {row[0]: row for row in rows}
    # The money-level invariant holds for every certifying method —
    # value-wise the naive baseline also balances (updates commute);
    # its corruption is at the serializability level (E8 covers that).
    for method in METHODS:
        assert by_method[method][5] is True
    # 2CM sustains at least CGM's debit-credit throughput.
    assert by_method["2cm"][4] >= by_method["cgm"][4]
    # Failures really happened and were repaired.
    assert by_method["2cm"][3] > 0
