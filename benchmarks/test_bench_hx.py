"""E5 — history Hx: COMMIT overtakes PREPARE (paper Sec. 5.3).

SN(7) < SN(8), yet T8 prepares *and commits* at site s before T7's
PREPARE arrives there.  Without the prepare-certification extension the
commit orders end up ``7 < 8`` at site i but ``8 < 7`` at site s — a
cyclic CG; with it, site s refuses T7's out-of-order PREPARE.  No
failures are involved at all.
"""

from repro.common.errors import RefusalReason
from repro.history.model import OpKind
from repro.workload.scenarios import run_hx

from bench_utils import publish, run_experiment

HEADERS = [
    "method",
    "T7",
    "T8",
    "C^s_8 < P^s_7",
    "commit-order-i",
    "commit-order-s",
    "cg-cycle",
    "T7-refusal",
]


def _rows():
    rows = []
    for method in ("2cm-noext", "2cm"):
        result = run_hx(method)
        report = result.audit
        site_events = {}
        for op in result.system.history.ops:
            if op.kind in (OpKind.PREPARE, OpKind.LOCAL_COMMIT):
                site_events.setdefault(op.site, []).append((op.kind, op.txn.number))
        s_events = site_events.get("s", [])
        overtake = (
            (OpKind.LOCAL_COMMIT, 8) in s_events
            and (OpKind.PREPARE, 7) in s_events
            and s_events.index((OpKind.LOCAL_COMMIT, 8))
            < s_events.index((OpKind.PREPARE, 7))
        )
        commits = lambda site: ",".join(
            str(n)
            for kind, n in site_events.get(site, [])
            if kind is OpKind.LOCAL_COMMIT
        )
        t7 = result.outcome(7)
        rows.append(
            [
                method,
                "commit" if t7.committed else "abort",
                "commit" if result.outcome(8).committed else "abort",
                overtake,
                commits("i"),
                commits("s"),
                report.distortions.commit_graph_cycle is not None,
                str(t7.reason) if t7.reason else "-",
            ]
        )
    return rows


def test_bench_hx(benchmark):
    rows = run_experiment(benchmark, _rows)
    publish("E5_hx", "E5: history Hx (COMMIT overtakes PREPARE)", HEADERS, rows)

    noext, full = rows
    # Without the extension: the overtake happens, both commit, and the
    # commit orders reverse across sites — the paper's cyclic CG.
    assert noext[3] is True
    assert noext[4] == "7,8" and noext[5] == "8,7"
    assert noext[6] is True
    # With the extension: the late PREPARE is refused exactly as the
    # Appendix prescribes, and the CG stays acyclic.
    assert full[1] == "abort"
    assert full[7] == str(RefusalReason.PREPARE_OUT_OF_ORDER)
    assert full[6] is False
