"""E4 — history H3: local view distortion via *indirect* conflicts
(paper Secs. 5.1–5.3).

T5 and T6 never conflict directly; local transactions L7 and L8 induce
the conflicts.  The prepare operations arrive in opposite orders at the
two sites, so the order-of-prepared commit policy (the alternative the
paper examines and rejects) yields a cyclic CG — as do ``naive`` and
``2cm-nocommitcert``.  Serial-number commit certification keeps both
sites in SN order with zero aborts.
"""

from repro.history.model import OpKind
from repro.workload.scenarios import run_h3

from bench_utils import publish, run_experiment

HEADERS = [
    "method",
    "committed",
    "aborted",
    "prepare-order-a",
    "prepare-order-b",
    "cg-cycle",
    "view-serializable",
]

METHODS = ("naive", "2cm-nocommitcert", "2cm-prepare-order", "2cm")


def _rows():
    rows = []
    for method in METHODS:
        result = run_h3(method)
        report = result.audit
        prepares = [
            (op.site, op.txn.number)
            for op in result.system.history.ops
            if op.kind is OpKind.PREPARE
        ]
        order_a = ",".join(str(n) for s, n in prepares if s == "a")
        order_b = ",".join(str(n) for s, n in prepares if s == "b")
        committed = sum(1 for o in result.global_outcomes.values() if o.committed)
        rows.append(
            [
                method,
                committed,
                len(result.global_outcomes) - committed,
                order_a,
                order_b,
                report.distortions.commit_graph_cycle is not None,
                report.view_serializability.serializable,
            ]
        )
    return rows


def test_bench_h3(benchmark):
    rows = run_experiment(benchmark, _rows)
    publish("E4_h3", "E4: history H3 (indirect conflicts)", HEADERS, rows)

    by_method = {row[0]: row for row in rows}
    # The race premise: opposite prepare orders at the two sites.
    for row in rows:
        assert row[3] == "5,6" and row[4] == "6,5"
    # Every weak policy yields the cycle and loses view serializability.
    for method in ("naive", "2cm-nocommitcert", "2cm-prepare-order"):
        assert by_method[method][5] is True
        assert by_method[method][6] is False
    # Full 2CM: clean, and with zero aborts (both transactions commit).
    assert by_method["2cm"][1] == 2 and by_method["2cm"][2] == 0
    assert by_method["2cm"][5] is False
    assert by_method["2cm"][6] is True
