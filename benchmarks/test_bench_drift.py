"""E9 — clock drift causes unnecessary aborts *only* (paper Sec. 5.2).

One coordinator's clock runs ahead by a growing offset.  A fast clock
hands out too-big serial numbers, so other coordinators' later PREPAREs
start failing the extension check (out-of-order refusals) — yet every
history stays view serializable: "The amount of the time drift among
the clocks has no influence on the correctness of the Certifier.  The
drift may cause unnecessary aborts, only."
"""

from repro.sim.experiments import exp_drift_sweep

from bench_utils import publish, run_experiment

HEADERS = [
    "clock-offset",
    "committed",
    "aborted",
    "out-of-order-refusals",
    "guarantee-ok",
]


def test_bench_drift(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_drift_sweep(offsets=(0.0, 10.0, 40.0, 160.0, 640.0)),
    )
    publish("E9_drift", "E9: clock drift sensitivity (offset on c2)", HEADERS, rows)

    # Correctness at every drift level — the paper's claim.
    assert all(row[4] is True for row in rows)
    # Zero drift -> zero out-of-order refusals.
    assert rows[0][3] == 0
    # Large drift -> unnecessary aborts appear and dominate the small-
    # drift configuration.
    assert rows[-1][3] > 0
    assert rows[-1][3] >= rows[1][3]
