"""E17 — conflict-aware vs conflict-blind prepare certification.

The paper's interval rule refuses ANY disjoint-interval candidate, even
one whose access set is disjoint from every prepared subtransaction's.
Its justification — the Conflict Detection Basis — explicitly covers
*indirect* conflicts: two subtransactions can be chained by a local
transaction the DTM cannot see.  This bench runs the predicate-style
access-set variant (the approach of the authors' earlier work) against
the paper's rule:

* on random failing workloads the variant refuses strictly less
  (it looks less restrictive);
* on the H2' scenario (disjoint access sets at site a, bridged by the
  local L4) the variant passes the dangerous PREPARE.  Commit
  certification then saves serializability only by deadlocking —
  the lock timeout kills the innocent local transaction;
* without that backstop (``naive``) the same structure corrupts the
  history outright.

The conflict-blind rule refuses the global transaction up front and
the local runs unharmed — the paper's design choice, measured.
"""

from repro.sim.experiments import exp_conflict_awareness

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "method",
    "workload-refusals",
    "workload-commits",
    "H2'-T3",
    "H2'-L4",
    "H2'-view-serializable",
]


def test_bench_conflict_awareness(benchmark):
    rows = run_experiment(benchmark, exp_conflict_awareness)
    publish(
        "E17_conflict_awareness",
        "E17: conflict-aware (unsound) vs conflict-blind (paper) certification",
        HEADERS,
        rows,
    )

    blind = rows_where(rows, 0, "2cm")[0]
    aware = rows_where(rows, 0, "2cm-conflict-aware")[0]
    naive = rows_where(rows, 0, "naive")[0]
    # Less restrictive on generic workloads...
    assert aware[1] <= blind[1]
    # ...but it passes the dangerous PREPARE H2' builds,
    assert aware[3] == "commit" and blind[3] == "refused"
    # surviving only by sacrificing the local transaction to a deadlock,
    assert aware[4] == "lock-timeout"
    # while the unprotected variant of the same structure corrupts.
    assert naive[5] is False
    assert blind[5] is True
