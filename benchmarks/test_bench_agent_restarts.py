"""E16 — prepared-state durability across 2PC Agent restarts
(extension experiment).

The 2PCA method's central artifact is the durable Agent log: the READY
promise must survive the agent process itself.  This sweep keeps
crashing agents mid-protocol (on top of a background unilateral-abort
rate) and verifies that correctness never falters, while availability
degrades gracefully (transactions caught in the active state at crash
time are aborted by their coordinators — the same outcome a REFUSE
would have produced).
"""

from repro.sim.experiments import exp_agent_restarts

from bench_utils import publish, run_experiment

HEADERS = [
    "agent-restarts",
    "committed",
    "aborted",
    "resubmissions",
    "guarantee-ok",
]


def test_bench_agent_restarts(benchmark):
    rows = run_experiment(benchmark, exp_agent_restarts)
    publish(
        "E16_agent_restarts",
        "E16: prepared-state durability across agent restarts",
        HEADERS,
        rows,
    )

    # Correctness is restart-count-independent.
    assert all(row[4] is True for row in rows)
    # Restarts cost some commits (active-state casualties), never the
    # guarantee; with zero restarts nothing is lost to them.
    assert rows[0][1] >= rows[-1][1]
