"""E18 — interleaving robustness (concurrency-fidelity sweep).

A single scripted history shows an anomaly *can* happen; a universal
guarantee needs volume.  This bench runs dozens of independently seeded
interleavings — different workloads, jittered message latencies,
different failure timings — per method.  2CM must be clean in every
single one; the naive baseline corrupts a visible fraction, which also
calibrates how often the paper's races arise "in the wild" rather than
by scripted construction.
"""

from repro.sim.experiments import exp_interleaving_robustness

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "method",
    "interleavings",
    "clean",
    "corrupted",
    "committed",
    "aborted",
    "resubmissions",
]


def test_bench_interleavings(benchmark):
    rows = run_experiment(
        benchmark, lambda: exp_interleaving_robustness(n_seeds=40)
    )
    publish(
        "E18_interleavings",
        "E18: 40 independent interleavings per method, p(abort)=0.5",
        HEADERS,
        rows,
    )

    cm = rows_where(rows, 0, "2cm")[0]
    naive = rows_where(rows, 0, "naive")[0]
    # The universal claim: every interleaving clean under 2CM.
    assert cm[3] == 0 and cm[2] == cm[1]
    # The baseline corrupts a nonzero fraction of the same space.
    assert naive[3] > 0
    # Failures were actually exercised everywhere.
    assert cm[6] > 0 and naive[6] > 0
