"""E8 — sensitivity to the unilateral-abort rate (the deferred study).

Sweeps the probability that a prepared subtransaction is unilaterally
aborted.  Expected shape: 2CM's certification aborts grow with the
failure rate while its guarantee never falters; the naive baseline
"commits everything" — and corrupts the history instead (anomaly runs).
"""

from repro.sim.experiments import exp_failure_sweep

from bench_utils import publish, rows_where, run_experiment

HEADERS = [
    "method",
    "p(abort)",
    "injected",
    "committed",
    "aborted",
    "abort-rate",
    "resubmissions",
    "anomaly-runs",
]


def test_bench_failure_sweep(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_failure_sweep(
            probabilities=(0.0, 0.2, 0.4, 0.6, 0.8), seeds=(1, 2, 3)
        ),
    )
    publish("E8_failures", "E8: unilateral-abort sensitivity", HEADERS, rows)

    cm_rows = rows_where(rows, 0, "2cm")
    naive_rows = rows_where(rows, 0, "naive")
    # 2CM never yields an anomalous history, at any failure level.
    assert all(row[7] == 0 for row in cm_rows)
    # Resubmissions track the injected failures for both methods.
    assert cm_rows[-1][6] > 0 and naive_rows[-1][6] > 0
    # At zero failures the two behave identically (paper: without
    # unilateral aborts of prepared subtransactions, no anomalies).
    assert cm_rows[0][4] == 0 and cm_rows[0][7] == 0
    assert naive_rows[0][7] == 0
    # With failures on, the naive baseline eventually corrupts.
    assert any(row[7] > 0 for row in naive_rows)
    # 2CM's abort rate is monotone-ish: highest at the highest level.
    assert cm_rows[-1][5] >= cm_rows[0][5]
