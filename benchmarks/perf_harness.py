#!/usr/bin/env python
"""Standalone entry point for the substrate perf harness.

Equivalent to ``python -m repro bench``; kept under ``benchmarks/`` so
the perf tooling lives next to the pytest-benchmark suites::

    PYTHONPATH=src python benchmarks/perf_harness.py [--out DIR] [--quick]

Writes ``BENCH_kernel.json`` and ``BENCH_e2e.json`` — the
machine-readable perf trajectory described in ``docs/PERF.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.sim.perf import main  # noqa: E402  (path bootstrap above)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".", help="artifact directory")
    parser.add_argument("--quick", action="store_true", help="smoke pass")
    parser.add_argument("--repeat", type=int, default=None)
    args = parser.parse_args()
    sys.exit(main(out_dir=args.out, quick=args.quick, repeats=args.repeat))
