"""E19 — adversarial configuration search (automated anomaly discovery).

The paper argues from hand-constructed histories; this bench argues
from a *searched family*: 120 random timing/failure configurations of
the H1/H2 race template, each run under naive, and every corrupting
configuration replayed under 2CM.  The headline assertion: the set of
configurations that defeat 2CM is empty.
"""

from collections import Counter

from repro.sim.adversary import search

from bench_utils import publish, run_experiment

HEADERS = ["quantity", "value"]


def test_bench_adversary(benchmark):
    result = run_experiment(
        benchmark, lambda: search(n_configs=120, seed=11)
    )
    rows = [
        ["configurations tried", result.tried],
        ["corrupting naive", len(result.corrupting)],
        ["hit rate", f"{result.hit_rate:.2f}"],
        ["defeating 2cm", len(result.defeats_2cm)],
    ]
    # Characterize the discovered anomalies a little.
    with_abort = sum(
        1 for c in result.corrupting if c.abort_delay is not None
    )
    rows.append(["corrupting configs with an injected abort", with_abort])
    publish(
        "E19_adversary",
        "E19: adversarial search over the H1/H2 race template",
        HEADERS,
        rows,
    )
    print("\nsample corrupting configurations:")
    for config in result.corrupting[:5]:
        print(f"  {config.describe()}")

    # The search actually found anomalies...
    assert len(result.corrupting) >= 5
    # ...every one of them involves a unilateral abort (the paper: "if
    # no unilateral aborts of prepared local subtransactions occur,
    # then no anomalies can occur")...
    assert with_abort == len(result.corrupting)
    # ...and none of them defeats the certifier.
    assert result.defeats_2cm == []
