"""E10 — alive-check interval sensitivity (paper Sec. 4.2 / Appendix A).

The alive check is the certifier's failure detector.  Checking often
costs work (checks column) but discovers unilateral aborts early, so
resubmission can run *before* the COMMIT arrives; checking rarely
leaves the repair on the commit path.  Correctness is unaffected either
way — the certification-time alive check closes the paper's "too long a
time between alive time checks" caveat.
"""

from repro.sim.experiments import exp_alive_interval_sweep

from bench_utils import publish, run_experiment

HEADERS = [
    "check-interval",
    "alive-checks",
    "intersection-refusals",
    "committed",
    "mean-latency",
    "guarantee-ok",
]


def test_bench_alive_interval(benchmark):
    rows = run_experiment(
        benchmark,
        lambda: exp_alive_interval_sweep(intervals=(5.0, 20.0, 80.0, 320.0)),
    )
    publish(
        "E10_alive_interval", "E10: alive-check interval sweep", HEADERS, rows
    )

    # Correctness never depends on the check frequency.
    assert all(row[5] is True for row in rows)
    # Checking more often means strictly more alive checks.
    checks = [row[1] for row in rows]
    assert checks == sorted(checks, reverse=True)
    # Commits are unaffected by the interval (failures still repaired).
    committed = {row[3] for row in rows}
    assert len(committed) == 1
