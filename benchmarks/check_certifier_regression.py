#!/usr/bin/env python
"""CI gate: fail on a >30% certifier ops/s regression.

Usage::

    python benchmarks/check_certifier_regression.py COMMITTED.json FRESH.json

Both files are ``BENCH_kernel.json`` artifacts (``repro-bench/v1``).
The committed file carries the numbers recorded with the PR; the fresh
file comes from ``python -m repro bench`` on the CI runner.  Raw ops/s
are not comparable across machines, so every comparison is calibrated
by the ratio of the ``kernel_schedule_fire`` row (a pure-substrate
benchmark present in both files): a fresh certifier row only fails the
gate when it is more than ``REPRO_BENCH_TOLERANCE`` (default 0.30)
below the committed rate scaled to the runner's speed.

Machine-independent invariants are checked uncalibrated: the indexed
engine must stay >= 5x the naive scan at the 10k-entry table, on any
hardware.
"""

import json
import os
import sys

CALIBRATION_ROW = "kernel_schedule_fire"
DEFAULT_TOLERANCE = 0.30


def _rows(doc):
    return {row["name"]: row for row in doc.get("results", [])}


def _rate(row):
    return float(row.get("ops_per_s") or 0.0)


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE))
    with open(argv[1]) as handle:
        committed = _rows(json.load(handle))
    with open(argv[2]) as handle:
        fresh = _rows(json.load(handle))

    failures = []

    calibration = 1.0
    base_committed = committed.get(CALIBRATION_ROW)
    base_fresh = fresh.get(CALIBRATION_ROW)
    if base_committed and base_fresh and _rate(base_committed) > 0:
        calibration = _rate(base_fresh) / _rate(base_committed)
        print(
            f"calibration ({CALIBRATION_ROW}): runner is "
            f"{calibration:.2f}x the committed machine"
        )
    else:
        print(f"warning: no {CALIBRATION_ROW} row in both files; uncalibrated")

    checked = 0
    for name, committed_row in sorted(committed.items()):
        if not name.startswith("certify_"):
            continue
        fresh_row = fresh.get(name)
        if fresh_row is None:
            failures.append(f"{name}: missing from the fresh artifact")
            continue
        expected = _rate(committed_row) * calibration
        actual = _rate(fresh_row)
        floor = (1.0 - tolerance) * expected
        verdict = "ok" if actual >= floor else "REGRESSION"
        print(
            f"  {name:<32} committed={_rate(committed_row):>12,.0f}/s "
            f"expected>={floor:>12,.0f}/s fresh={actual:>12,.0f}/s  {verdict}"
        )
        if actual < floor:
            failures.append(
                f"{name}: {actual:,.0f} op/s is more than "
                f"{tolerance:.0%} below the calibrated {expected:,.0f} op/s"
            )
        checked += 1
    if checked == 0:
        failures.append("no certify_* rows in the committed artifact")

    # Machine-independent: the indexed engine's whole point.
    naive = fresh.get("certify_prepare_naive_10000")
    indexed = fresh.get("certify_prepare_indexed_10000")
    if naive and indexed:
        ratio = _rate(indexed) / _rate(naive) if _rate(naive) else 0.0
        print(f"  indexed/naive prepare @10k: {ratio:.1f}x (need >= 5x)")
        if ratio < 5.0:
            failures.append(
                f"indexed certify_prepare is only {ratio:.1f}x naive at 10k"
            )
    else:
        failures.append("fresh artifact lacks the 10k certify_prepare rows")

    if failures:
        print("\ncertifier benchmark gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncertifier benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
