"""E14 — the several-intervals optimization (paper Sec. 4.2), ablated.

A negative result worth recording: the paper suggests remembering
several alive intervals per prepared subtransaction as an optimization
over "simply store the last".  Because our certifier performs an alive
check (and interval refresh) at certification time — which the paper's
Sec. 6 caveat about "too long a time between alive time checks" invites
— a candidate interval `[last-op, now]` that misses the entry's current
interval necessarily misses every older archived one too.  The
optimization is subsumed: decisions are identical at every memory
depth.
"""

from repro.sim.experiments import exp_interval_memory

from bench_utils import publish, run_experiment

HEADERS = [
    "intervals-remembered",
    "committed",
    "aborted",
    "intersection-refusals",
    "guarantee-ok",
]


def test_bench_interval_memory(benchmark):
    rows = run_experiment(
        benchmark, lambda: exp_interval_memory(memories=(1, 2, 4, 8))
    )
    publish(
        "E14_interval_memory",
        "E14: alive-interval memory ablation (negative result)",
        HEADERS,
        rows,
    )

    # Identical outcomes at every depth — the subsumption claim.
    baseline = rows[0][1:]
    for row in rows[1:]:
        assert row[1:] == baseline
    # And the guarantee holds everywhere.
    assert all(row[4] is True for row in rows)
