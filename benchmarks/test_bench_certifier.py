"""Certifier benchmark: naive linear scan vs indexed engine (E20).

Measures ``certify_prepare`` and ``certify_commit`` ops/s at 100 /
1 000 / 10 000-entry alive interval tables under both certification
engines, plus a windowed soak proving the indexed engine's epoch GC
keeps the table and the lazy index bounded under sustained load.
Publishes the table like every other experiment and merges the series
into ``BENCH_kernel.json`` at the repo root (the same artifact
``python -m repro bench`` writes), under the ``certifier_series`` key.
"""

import json
import os

from repro.sim.perf import CERTIFIER_TABLE_SIZES, certifier_series, run_certifier_soak

from bench_utils import publish, run_experiment

HEADERS = [
    "engine",
    "table",
    "prepare-ops/s",
    "commit-ops/s",
    "prepare-x",
    "commit-x",
]

SOAK_TXNS = 20_000
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernel.json",
)


def _merge_into_artifact(series, soak):
    """Fold the fresh series into the committed BENCH_kernel.json."""
    doc = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            doc = json.load(handle)
    doc["certifier_series"] = series
    doc["certifier_soak"] = dict(soak, n_txns=SOAK_TXNS)
    with open(BENCH_PATH, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")


def _sweep():
    series = certifier_series(sizes=CERTIFIER_TABLE_SIZES, repeats=2)
    soak = run_certifier_soak(SOAK_TXNS)
    _merge_into_artifact(series, soak)
    by_key = {(r["engine"], r["table_size"]): r for r in series}
    rows = []
    for size in CERTIFIER_TABLE_SIZES:
        naive = by_key[("naive", size)]
        for engine in ("naive", "indexed"):
            r = by_key[(engine, size)]
            rows.append(
                [
                    engine,
                    size,
                    f"{r['prepare_ops_per_s']:,.0f}",
                    f"{r['commit_ops_per_s']:,.0f}",
                    f"{r['prepare_ops_per_s'] / naive['prepare_ops_per_s']:.1f}x",
                    f"{r['commit_ops_per_s'] / naive['commit_ops_per_s']:.1f}x",
                ]
            )
    return rows, (by_key, soak)


def test_bench_certifier(benchmark):
    rows, (by_key, soak) = run_experiment(benchmark, _sweep)
    publish(
        "E20_certifier",
        "E20: certification ops/s, naive scan vs indexed engine",
        HEADERS,
        rows,
    )
    # The tentpole acceptance bar: the indexed engine answers prepare
    # certification at least 5x faster than the naive scan on a
    # 10k-entry table (measured ~3 orders of magnitude in practice).
    naive = by_key[("naive", 10_000)]
    indexed = by_key[("indexed", 10_000)]
    assert indexed["prepare_ops_per_s"] >= 5 * naive["prepare_ops_per_s"], (
        indexed["prepare_ops_per_s"],
        naive["prepare_ops_per_s"],
    )
    assert indexed["commit_ops_per_s"] >= 5 * naive["commit_ops_per_s"], (
        indexed["commit_ops_per_s"],
        naive["commit_ops_per_s"],
    )
    # Indexed certification must not fall off a cliff with table size:
    # 100 -> 10k entries may cost at most a small constant factor.
    assert (
        indexed["prepare_ops_per_s"]
        >= by_key[("indexed", 100)]["prepare_ops_per_s"] / 4
    )
    # The soak's epoch GC keeps everything bounded.
    assert soak["refused"] == 0
    assert soak["admitted"] == SOAK_TXNS
    assert soak["max_table_size"] <= soak["window"] + 1
    assert soak["gc_compactions"] > 0
    assert soak["gc_reclaimed"] > 0
    # The lazy heaps never exceed the compaction threshold by more than
    # one pre-sweep burst: 4 heaps x (stale factor x live + slack).
    assert soak["max_index_depth"] <= 16 * (soak["window"] + 1) + 4 * 64
