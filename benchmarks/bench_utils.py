"""Shared plumbing for the benchmark harness.

Each ``test_bench_*`` module reproduces one experiment id from
DESIGN.md.  Benchmarks are deterministic simulations, so they run one
round through ``benchmark.pedantic`` and publish their table both to
stdout and to ``benchmarks/results/<experiment>.txt`` (EXPERIMENTS.md
quotes those files).
"""

from __future__ import annotations

import os
from typing import Callable, List, Sequence

from repro.sim.report import render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_experiment(benchmark, fn: Callable[[], List[List[object]]]):
    """Time one experiment run and return its rows."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def publish(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render, print and persist one experiment table."""
    table = render_table(title, headers, rows)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as handle:
        handle.write(table + "\n")
    print("\n" + table)
    return table


def column(rows: Sequence[Sequence[object]], index: int) -> List[object]:
    return [row[index] for row in rows]


def rows_where(rows, index: int, value) -> List[Sequence[object]]:
    """All rows whose ``index``-th column equals ``value``."""
    return [row for row in rows if row[index] == value]
