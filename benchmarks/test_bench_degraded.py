"""Degraded-mode benchmark: throughput under message loss.

Runs the same seeded workload over a perfect wire and over lossy wires
(1% and 5% per-message drop) with the session layer repairing the
damage, and measures what the degradation costs: committed throughput,
retransmission overhead, and duplicate suppression.  Publishes the
table like every other experiment and additionally writes the
machine-readable ``BENCH_chaos.json`` at the repo root (same pattern
as ``BENCH_kernel.json`` / ``BENCH_e2e.json``).
"""

import json
import os

from repro.core.coordinator import CoordinatorTimeouts
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliableConfig
from repro.sim.driver import run_schedule
from repro.sim.metrics import collect_metrics
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

from bench_utils import publish, run_experiment

HEADERS = [
    "loss",
    "committed",
    "aborted",
    "throughput",
    "messages",
    "retransmits",
    "rtx-overhead",
    "dups-dropped",
]

LOSS_LEVELS = (0.0, 0.01, 0.05)
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_chaos.json",
)


def _run_at(loss: float):
    config = SystemConfig(
        sites=("a", "b", "c"),
        n_coordinators=2,
        seed=17,
        faults=FaultPlan(loss=loss),
        reliable=ReliableConfig(seed=17),
        coordinator_timeouts=CoordinatorTimeouts(
            result_timeout=800.0,
            vote_timeout=800.0,
            ack_timeout=120.0,
            max_resends=400,
        ),
    )
    system = MultidatabaseSystem(config)
    schedule = WorkloadGenerator(
        WorkloadConfig(sites=("a", "b", "c"), n_global=40, seed=17)
    ).generate()
    result = run_schedule(system, schedule)
    metrics = collect_metrics(system, latencies=result.commit_latencies)
    system.close()
    return metrics


def _sweep():
    rows = []
    records = []
    for loss in LOSS_LEVELS:
        m = _run_at(loss)
        overhead = m.retransmits / m.messages if m.messages else 0.0
        rows.append(
            [
                f"{loss:.0%}",
                m.global_committed,
                m.global_aborted,
                round(m.throughput, 5),
                m.messages,
                m.retransmits,
                f"{overhead:.2%}",
                m.dups_dropped,
            ]
        )
        records.append(
            {
                "loss": loss,
                "committed": m.global_committed,
                "aborted": m.global_aborted,
                "throughput": m.throughput,
                "mean_latency": m.mean_latency,
                "sim_time": m.sim_time,
                "messages": m.messages,
                "messages_lost": m.messages_lost,
                "retransmits": m.retransmits,
                "retransmit_overhead": overhead,
                "dups_dropped": m.dups_dropped,
                "dead_letters": m.dead_letters,
            }
        )
    with open(BENCH_PATH, "w") as handle:
        json.dump({"experiment": "degraded_mode", "levels": records}, handle, indent=2)
    return rows, records


def test_bench_degraded_mode(benchmark):
    rows_and_records = run_experiment(benchmark, _sweep)
    rows, records = rows_and_records
    publish(
        "E12_degraded",
        "E12: throughput under message loss (session layer on)",
        HEADERS,
        rows,
    )
    baseline, one, five = records
    # The perfect wire needs no repairs.
    assert baseline["retransmits"] == 0
    assert baseline["messages_lost"] == 0
    # Lossy wires really lost traffic, and the session layer repaired
    # it: every run still terminates with the same workload decided.
    for record in (one, five):
        assert record["messages_lost"] > 0
        assert record["retransmits"] > 0
        assert record["committed"] + record["aborted"] >= 40
    # Overhead grows with the loss rate.
    assert five["retransmit_overhead"] > one["retransmit_overhead"]
    # Nothing was abandoned: the retry budget absorbed 5% loss.
    assert five["dead_letters"] == 0
    # Commits survive degradation (the whole point of the layer).
    assert five["committed"] > 0
    assert os.path.exists(BENCH_PATH)
