"""E12 — ablation of the SRS assumption (paper Secs. 1, 4).

The entire Conflict Detection Basis — "if two local subtransactions are
alive at the same time and the LTM produces locally rigorous histories,
then the subtransactions have neither directly nor indirectly
conflicting elementary database operations" — stands on rigorousness.
Swap the strict-2PL scheduler for one that releases read locks early
(serializable-ish but *not* rigorous) and the certifier's reasoning
breaks: rigor violations appear, and so do uncaught anomalies.
"""

from repro.sim.experiments import exp_srs_ablation

from bench_utils import publish, rows_where, run_experiment

HEADERS = ["local-scheduler", "rigor-violations", "guarantee-failures"]


def test_bench_srs(benchmark):
    rows = run_experiment(
        benchmark, lambda: exp_srs_ablation(seeds=(1, 2, 3, 4, 5, 6))
    )
    publish("E12_srs", "E12: SRS (rigorousness) ablation", HEADERS, rows)

    rigorous = rows_where(rows, 0, "rigorous")[0]
    loose = rows_where(rows, 0, "non-rigorous")[0]
    # The substrate really is rigorous under strict 2PL; and then 2CM's
    # guarantee holds in every run.
    assert rigorous[1] == 0 and rigorous[2] == 0
    # Without rigorousness both fall.
    assert loose[1] > 0
    assert loose[2] > 0
