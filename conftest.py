"""Root conftest: make the repository importable under bare ``pytest``.

``python -m pytest`` puts the current directory on ``sys.path``; plain
``pytest`` does not.  Tests and benchmarks import shared helpers as
``tests.helpers``, so the repository root must be importable either way.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
